// Package report renders experiment results as aligned text tables, CSV,
// and ASCII series — the reproduction's stand-in for the artifact's
// matplotlib plotting script.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table is a simple header + rows text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = Sci(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (no quoting needed for our content).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Headers, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Sci formats a value in compact scientific / fixed notation appropriate
// for probabilities and rates.
func Sci(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.IsInf(v, 1):
		return "inf"
	case math.IsNaN(v):
		return "NaN"
	case math.Abs(v) >= 0.01 && math.Abs(v) < 10000:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// CDF renders a Figure 3-style cumulative latency distribution: one line
// per percentile with a bar proportional to the cumulative fraction, plus
// the fraction of samples inside the real-time budget (budgetNs ≤ 0 omits
// the budget line). Samples are nanoseconds; the slice is not modified.
func CDF(w io.Writer, title string, samplesNs []float64, budgetNs float64) error {
	if _, err := fmt.Fprintf(w, "== %s ==  (latency CDF, %d samples)\n", title, len(samplesNs)); err != nil {
		return err
	}
	if len(samplesNs) == 0 {
		_, err := fmt.Fprintln(w, "(no samples)")
		return err
	}
	sorted := append([]float64(nil), samplesNs...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1} {
		label := fmt.Sprintf("p%g", q*100)
		if q == 1 {
			label = "max"
		}
		if _, err := fmt.Fprintf(w, "%-6s %10s ns |%s\n", label, Sci(at(q)), strings.Repeat("#", int(q*50))); err != nil {
			return err
		}
	}
	if budgetNs > 0 {
		within := sort.SearchFloat64s(sorted, budgetNs)
		for within < len(sorted) && sorted[within] == budgetNs {
			within++
		}
		frac := float64(within) / float64(len(sorted))
		if _, err := fmt.Fprintf(w, "within %s ns budget: %.2f%%  (deadline-miss rate %.2f%%)\n",
			Sci(budgetNs), frac*100, (1-frac)*100); err != nil {
			return err
		}
	}
	return nil
}

// Series renders a log-scale ASCII chart of (x, y) points, one line per
// point with a bar proportional to log10(y) — a terminal stand-in for the
// paper's log-axis figures.
func Series(w io.Writer, title, xLabel, yLabel string, xs []string, ys []float64) error {
	if _, err := fmt.Fprintf(w, "== %s ==  (%s vs %s, log scale)\n", title, yLabel, xLabel); err != nil {
		return err
	}
	minLog, maxLog := math.Inf(1), math.Inf(-1)
	for _, y := range ys {
		if y <= 0 {
			continue
		}
		l := math.Log10(y)
		minLog = math.Min(minLog, l)
		maxLog = math.Max(maxLog, l)
	}
	if math.IsInf(minLog, 1) {
		minLog, maxLog = 0, 1
	}
	span := maxLog - minLog
	if span == 0 {
		span = 1
	}
	for i, y := range ys {
		bar := 0
		if y > 0 {
			bar = int((math.Log10(y) - minLog) / span * 50)
		}
		if _, err := fmt.Fprintf(w, "%-10s %-10s |%s\n", xs[i], Sci(y), strings.Repeat("#", bar)); err != nil {
			return err
		}
	}
	return nil
}

package faultinject

import (
	"net"
	"sync"
	"time"
)

// Valve is a flow gate shared by every connection of one wrapped listener:
// Stall blocks all reads and writes on those connections until Resume.
// Stalling a replica this way models a wedged-but-connected server — the
// TCP sessions stay up, nothing errors, nothing answers — which is the
// failure mode deadline-aware failover exists for (a killed replica is
// detected by connection errors; a stalled one only by the timeout).
type Valve struct {
	mu      sync.Mutex
	gate    chan struct{} // closed channel ⇒ flowing
	stalled bool
}

// NewValve returns an open (flowing) valve.
func NewValve() *Valve {
	open := make(chan struct{})
	close(open)
	return &Valve{gate: open}
}

// Stall blocks all traffic through the valve until Resume. Idempotent.
func (v *Valve) Stall() {
	v.mu.Lock()
	if !v.stalled {
		v.stalled = true
		v.gate = make(chan struct{})
	}
	v.mu.Unlock()
}

// Resume releases a stalled valve. Idempotent.
func (v *Valve) Resume() {
	v.mu.Lock()
	if v.stalled {
		v.stalled = false
		close(v.gate)
	}
	v.mu.Unlock()
}

// WrapListener gates every connection accepted from ln through the valve.
func (v *Valve) WrapListener(ln net.Listener) net.Listener {
	return &valveListener{Listener: ln, v: v}
}

type valveListener struct {
	net.Listener
	v *Valve
}

func (l *valveListener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &valveConn{Conn: nc, v: l.v, closed: make(chan struct{})}, nil
}

// valveConn waits out the gate before every Read and Write. Close releases
// its own waiters even while the valve is stalled, so tearing a server
// down mid-stall cannot wedge its connection goroutines.
type valveConn struct {
	net.Conn
	v      *Valve
	closed chan struct{}
	once   sync.Once
}

func (c *valveConn) wait() {
	c.v.mu.Lock()
	gate := c.v.gate
	c.v.mu.Unlock()
	select {
	case <-gate:
	case <-c.closed:
	}
}

func (c *valveConn) Read(b []byte) (int, error) {
	c.wait()
	return c.Conn.Read(b)
}

func (c *valveConn) Write(b []byte) (int, error) {
	c.wait()
	return c.Conn.Write(b)
}

func (c *valveConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// FleetAction is one replica-level fault in a FleetPlan.
type FleetAction uint8

const (
	// FleetKill terminates the replica (its Kill hook is invoked once;
	// there is no resurrection in a plan).
	FleetKill FleetAction = iota
	// FleetStall freezes the replica's traffic (Valve.Stall semantics).
	FleetStall
	// FleetResume releases a stalled replica.
	FleetResume
)

func (a FleetAction) String() string {
	switch a {
	case FleetKill:
		return "kill"
	case FleetStall:
		return "stall"
	case FleetResume:
		return "resume"
	}
	return "unknown"
}

// FleetEvent schedules one action against one replica, After the plan
// starts.
type FleetEvent struct {
	After   time.Duration
	Replica int
	Action  FleetAction
}

// ReplicaControl is the handle a FleetPlan drives: hook up Kill to the
// server's Close, and Stall/Resume to a Valve wrapped around its listener.
// Nil hooks are skipped.
type ReplicaControl struct {
	Kill   func()
	Stall  func()
	Resume func()
}

// StartFleetPlan executes the events against the controls on a background
// goroutine, sleeping out each event's After offset (events need not be
// sorted). done closes when every event has fired; stop aborts the
// remaining schedule (and also closes done). Events naming a replica out
// of range are ignored.
func StartFleetPlan(events []FleetEvent, controls []ReplicaControl) (done <-chan struct{}, stop func()) {
	ordered := append([]FleetEvent(nil), events...)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j].After < ordered[j-1].After; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	d := make(chan struct{})
	quit := make(chan struct{})
	var once sync.Once
	go func() {
		defer close(d)
		start := time.Now()
		for _, ev := range ordered {
			if wait := ev.After - time.Since(start); wait > 0 {
				select {
				case <-quit:
					return
				case <-time.After(wait):
				}
			}
			select {
			case <-quit:
				return
			default:
			}
			if ev.Replica < 0 || ev.Replica >= len(controls) {
				continue
			}
			ctl := controls[ev.Replica]
			switch ev.Action {
			case FleetKill:
				if ctl.Kill != nil {
					ctl.Kill()
				}
			case FleetStall:
				if ctl.Stall != nil {
					ctl.Stall()
				}
			case FleetResume:
				if ctl.Resume != nil {
					ctl.Resume()
				}
			}
		}
	}()
	return d, func() { once.Do(func() { close(quit) }) }
}

package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"astrea/internal/bitvec"
	"astrea/internal/decoder"
	"astrea/internal/leakcheck"
)

// recorderConn is a net.Conn sink that records written bytes and whether it
// was closed; reads return a fixed script.
type recorderConn struct {
	wrote  bytes.Buffer
	read   *bytes.Reader
	closed bool
}

func newRecorder(read []byte) *recorderConn {
	return &recorderConn{read: bytes.NewReader(read)}
}

func (r *recorderConn) Read(b []byte) (int, error)         { return r.read.Read(b) }
func (r *recorderConn) Write(b []byte) (int, error)        { return r.wrote.Write(b) }
func (r *recorderConn) Close() error                       { r.closed = true; return nil }
func (r *recorderConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (r *recorderConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (r *recorderConn) SetDeadline(t time.Time) error      { return nil }
func (r *recorderConn) SetReadDeadline(t time.Time) error  { return nil }
func (r *recorderConn) SetWriteDeadline(t time.Time) error { return nil }

// TestWriteCorruptionIsDeterministic checks the core replay property: the
// same seed against the same operation sequence injects the same faults,
// and corruption flips exactly one bit of a copy (never the caller's
// buffer).
func TestWriteCorruptionIsDeterministic(t *testing.T) {
	run := func() []byte {
		rec := newRecorder(nil)
		c := WrapConn(rec, Config{Seed: 3, CorruptP: 1})
		msg := []byte{0x00, 0xFF, 0x55, 0xAA}
		orig := append([]byte(nil), msg...)
		if n, err := c.Write(msg); err != nil || n != len(msg) {
			t.Fatalf("write: %d, %v", n, err)
		}
		if !bytes.Equal(msg, orig) {
			t.Fatal("corruption mutated the caller's buffer")
		}
		return rec.wrote.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different corruption: %x vs %x", a, b)
	}
	diff := 0
	orig := []byte{0x00, 0xFF, 0x55, 0xAA}
	for i := range a {
		for bit := 0; bit < 8; bit++ {
			if (a[i]^orig[i])>>bit&1 == 1 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diff)
	}
}

// TestPartialWriteDisconnects checks the mid-frame disconnect fault: a
// strict prefix is written, the underlying connection is closed, and the
// caller sees ErrDropped.
func TestPartialWriteDisconnects(t *testing.T) {
	rec := newRecorder(nil)
	c := WrapConn(rec, Config{Seed: 1, PartialP: 1})
	msg := make([]byte, 64)
	n, err := c.Write(msg)
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("want ErrDropped, got %v", err)
	}
	if n >= len(msg) {
		t.Fatalf("partial write wrote %d of %d bytes (not a strict prefix)", n, len(msg))
	}
	if rec.wrote.Len() != n {
		t.Fatalf("reported %d bytes written, underlying saw %d", n, rec.wrote.Len())
	}
	if !rec.closed {
		t.Fatal("partial write did not close the connection")
	}
}

// TestDropClosesOnRead checks the drop fault on the read path.
func TestDropClosesOnRead(t *testing.T) {
	rec := newRecorder([]byte{1, 2, 3})
	c := WrapConn(rec, Config{Seed: 1, DropP: 1})
	if _, err := c.Read(make([]byte, 3)); !errors.Is(err, ErrDropped) {
		t.Fatalf("want ErrDropped, got %v", err)
	}
	if !rec.closed {
		t.Fatal("drop did not close the connection")
	}
}

// TestShortRead checks that the short-read fault delivers a strict prefix
// of the requested bytes without losing any: the rest stays readable.
func TestShortRead(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	rec := newRecorder(payload)
	c := WrapConn(rec, Config{Seed: 2, ShortReadP: 1})
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("short reads lost bytes: %v", got)
	}
}

// TestZeroConfigIsTransparent checks that an all-zero schedule passes
// traffic through untouched.
func TestZeroConfigIsTransparent(t *testing.T) {
	rec := newRecorder([]byte{9, 8, 7})
	c := WrapConn(rec, Config{})
	if n, err := c.Write([]byte{1, 2, 3}); err != nil || n != 3 {
		t.Fatalf("write: %d, %v", n, err)
	}
	if !bytes.Equal(rec.wrote.Bytes(), []byte{1, 2, 3}) {
		t.Fatalf("zero config altered the write: %v", rec.wrote.Bytes())
	}
	buf := make([]byte, 3)
	if _, err := io.ReadFull(c, buf); err != nil || !bytes.Equal(buf, []byte{9, 8, 7}) {
		t.Fatalf("zero config altered the read: %v, %v", buf, err)
	}
}

// TestProxyRoundTrip runs a fault-free proxy in front of an echo server and
// checks bytes survive both directions; Close must tear everything down.
func TestProxyRoundTrip(t *testing.T) {
	leakcheck.Check(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				io.Copy(nc, nc)
			}(nc)
		}
	}()

	p, err := NewProxy(ln.Addr().String(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	msg := []byte("through the chaos proxy and back")
	if _, err := nc.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(nc, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("echo mangled: %q", buf)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close the proxied connection is severed.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("proxied connection survived proxy Close")
	}
}

// fixedDecoder returns a constant result.
type fixedDecoder struct{}

func (fixedDecoder) Name() string { return "fixed" }
func (fixedDecoder) Decode(s bitvec.Vec) decoder.Result {
	return decoder.Result{ObsPrediction: 42}
}

// TestFlakyDecoderSchedule checks each fault kind fires per its schedule
// and that a zero schedule delegates untouched.
func TestFlakyDecoderSchedule(t *testing.T) {
	s := bitvec.New(8)

	clean := NewFlaky(fixedDecoder{}, FlakyConfig{})
	if got := clean.Decode(s); got.ObsPrediction != 42 {
		t.Fatalf("zero schedule altered the result: %+v", got)
	}
	if clean.Name() != "fixed (flaky)" {
		t.Fatalf("name %q", clean.Name())
	}

	mustPanic := func(cfg FlakyConfig, check func(v interface{}) bool) {
		t.Helper()
		defer func() {
			if v := recover(); v == nil || !check(v) {
				t.Fatalf("expected scheduled panic, recovered %v", v)
			}
		}()
		NewFlaky(fixedDecoder{}, cfg).Decode(s)
	}
	mustPanic(FlakyConfig{PanicP: 1}, func(v interface{}) bool {
		_, ok := v.(string)
		return ok
	})
	mustPanic(FlakyConfig{ErrP: 1}, func(v interface{}) bool {
		err, ok := v.(error)
		return ok && errors.Is(err, ErrInjected)
	})

	slow := NewFlaky(fixedDecoder{}, FlakyConfig{SlowP: 1, SlowMin: 10 * time.Millisecond, SlowMax: 10 * time.Millisecond})
	start := time.Now()
	slow.Decode(s)
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("slow fault finished in %v, want ≥ 10ms", elapsed)
	}
}

// TestListenerWrapsAccepted checks accepted connections carry the schedule.
func TestListenerWrapsAccepted(t *testing.T) {
	leakcheck.Check(t)
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := WrapListener(inner, Config{Seed: 5, DropP: 1})
	defer ln.Close()
	accepted := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			accepted <- err
			return
		}
		defer nc.Close()
		_, err = nc.Read(make([]byte, 1))
		accepted <- err
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write([]byte{1})
	if err := <-accepted; !errors.Is(err, ErrDropped) {
		t.Fatalf("accepted conn not wrapped: %v", err)
	}
}

// Package faultinject provides deterministic, seeded chaos wrappers used to
// harden the decode service (internal/server) against hostile peers and
// internal faults: a net.Conn / net.Listener pair that injects latency
// spikes, short reads, partial writes, byte corruption and mid-frame
// disconnects; a TCP proxy that funnels real client traffic through such a
// connection; and a decoder.Decoder wrapper that panics, errors or stalls
// on a seeded schedule. Every fault draws from an internal/prng stream, so
// a failing chaos run replays exactly from its seed.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"astrea/internal/bitvec"
	"astrea/internal/decoder"
	"astrea/internal/montecarlo"
	"astrea/internal/prng"
)

// ErrDropped is returned by a chaos Conn whose fault schedule closed the
// connection mid-operation.
var ErrDropped = errors.New("faultinject: connection dropped by fault schedule")

// ErrInjected is the value a FlakyDecoder panics with on its scheduled
// error faults, so containment layers can tell injected faults from
// genuine decoder bugs.
var ErrInjected = errors.New("faultinject: injected decoder fault")

// Config is a chaos connection's fault schedule. All probabilities are
// per-operation (one Read or Write call); zero disables the fault.
type Config struct {
	// Seed drives the fault schedule; the same seed replays the same
	// faults against the same operation sequence.
	Seed uint64
	// StallP delays the operation by a uniform duration in
	// [StallMin, StallMax] — a latency spike.
	StallP             float64
	StallMin, StallMax time.Duration
	// CorruptP flips one random bit in the bytes moved by the operation.
	CorruptP float64
	// DropP closes the connection instead of performing the operation.
	DropP float64
	// PartialP (writes only) writes a strict prefix of the buffer and then
	// closes — a mid-frame disconnect as seen by the peer.
	PartialP float64
	// ShortReadP (reads only) fills at most a prefix of the buffer,
	// exercising the peer-facing io.ReadFull loops in frame readers.
	ShortReadP float64
}

// Conn wraps a net.Conn with the fault schedule. It satisfies the net.Conn
// concurrency contract (one concurrent Read plus one concurrent Write);
// the fault stream itself is mutex-protected.
type Conn struct {
	net.Conn
	cfg Config

	mu  sync.Mutex
	rng *prng.Source
}

// WrapConn wraps nc with a fault schedule seeded from cfg.Seed.
func WrapConn(nc net.Conn, cfg Config) *Conn {
	return newConn(nc, cfg, prng.New(cfg.Seed))
}

func newConn(nc net.Conn, cfg Config, rng *prng.Source) *Conn {
	return &Conn{Conn: nc, cfg: cfg, rng: rng}
}

// faults is one operation's sampled fault set.
type faults struct {
	stall   time.Duration
	drop    bool
	corrupt bool
	partial bool
	short   bool
}

func (c *Conn) decide(write bool) faults {
	c.mu.Lock()
	defer c.mu.Unlock()
	var f faults
	if c.cfg.StallP > 0 && c.rng.Bernoulli(c.cfg.StallP) {
		f.stall = c.cfg.StallMin
		if span := c.cfg.StallMax - c.cfg.StallMin; span > 0 {
			f.stall += time.Duration(c.rng.Float64() * float64(span))
		}
	}
	f.drop = c.cfg.DropP > 0 && c.rng.Bernoulli(c.cfg.DropP)
	f.corrupt = c.cfg.CorruptP > 0 && c.rng.Bernoulli(c.cfg.CorruptP)
	if write {
		f.partial = c.cfg.PartialP > 0 && c.rng.Bernoulli(c.cfg.PartialP)
	} else {
		f.short = c.cfg.ShortReadP > 0 && c.rng.Bernoulli(c.cfg.ShortReadP)
	}
	return f
}

func (c *Conn) intn(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Intn(n)
}

// Read implements net.Conn with scheduled stalls, short reads, byte
// corruption and drops.
func (c *Conn) Read(b []byte) (int, error) {
	f := c.decide(false)
	if f.stall > 0 {
		time.Sleep(f.stall)
	}
	if f.drop {
		c.Conn.Close()
		return 0, ErrDropped
	}
	if f.short && len(b) > 1 {
		b = b[:1+c.intn(len(b)-1)]
	}
	n, err := c.Conn.Read(b)
	if f.corrupt && n > 0 {
		i := c.intn(n * 8)
		b[i/8] ^= 1 << (i % 8)
	}
	return n, err
}

// Write implements net.Conn with scheduled stalls, partial-write
// disconnects, byte corruption and drops. Corruption mutates a copy, never
// the caller's buffer.
func (c *Conn) Write(b []byte) (int, error) {
	f := c.decide(true)
	if f.stall > 0 {
		time.Sleep(f.stall)
	}
	if f.drop {
		c.Conn.Close()
		return 0, ErrDropped
	}
	if f.partial && len(b) > 1 {
		n, _ := c.Conn.Write(b[:c.intn(len(b))])
		c.Conn.Close()
		return n, ErrDropped
	}
	if f.corrupt && len(b) > 0 {
		mut := append([]byte(nil), b...)
		i := c.intn(len(mut) * 8)
		mut[i/8] ^= 1 << (i % 8)
		return c.Conn.Write(mut)
	}
	return c.Conn.Write(b)
}

// Listener wraps a net.Listener so every accepted connection carries the
// fault schedule, each with an independent seed-derived fault stream.
type Listener struct {
	net.Listener
	cfg  Config
	base *prng.Source
	n    atomic.Uint64
}

// WrapListener wraps ln with the fault schedule.
func WrapListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg, base: prng.New(cfg.Seed)}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return newConn(nc, l.cfg, l.base.Split(l.n.Add(1))), nil
}

// Proxy is a chaos TCP proxy: it accepts client connections on a loopback
// listener and pipes each through a fault-injecting Conn to the backend,
// so unmodified clients and servers both experience the fault schedule on
// the wire between them.
type Proxy struct {
	ln      net.Listener
	backend string
	cfg     Config
	base    *prng.Source
	n       atomic.Uint64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewProxy listens on an ephemeral loopback port and forwards every
// connection to backend through the fault schedule.
func NewProxy(backend string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:      ln,
		backend: backend,
		cfg:     cfg,
		base:    prng.New(cfg.Seed),
		conns:   make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address; point clients here.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops accepting, severs every proxied connection and waits for the
// pump goroutines to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

// KillActive severs every currently proxied connection without stopping
// the proxy: clients see an abrupt disconnect and may immediately redial
// through the same proxy. It returns the number of connections severed
// (both directions of one proxied session count once each way's conn, so a
// single client session reports 2). Used to chaos-test reconnect paths —
// streaming resume in particular — on a controlled schedule rather than a
// probabilistic one.
func (p *Proxy) KillActive() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for c := range p.conns {
		c.Close()
		n++
	}
	return n
}

// track registers c for teardown; it reports false (and closes c) if the
// proxy is already closed.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		front, err := p.ln.Accept()
		if err != nil {
			return
		}
		back, err := net.Dial("tcp", p.backend)
		if err != nil {
			front.Close()
			continue
		}
		chaos := newConn(front, p.cfg, p.base.Split(p.n.Add(1)))
		if !p.track(chaos) || !p.track(back) {
			chaos.Close()
			back.Close()
			return
		}
		p.wg.Add(2)
		go p.pump(back, chaos)
		go p.pump(chaos, back)
	}
}

// pump copies one direction until either side fails, then severs both so
// the peer sees the disconnect.
func (p *Proxy) pump(dst, src net.Conn) {
	defer p.wg.Done()
	io.Copy(dst, src)
	dst.Close()
	src.Close()
	p.untrack(dst)
	p.untrack(src)
}

// FlakyConfig is a flaky decoder's fault schedule; probabilities are per
// Decode call.
type FlakyConfig struct {
	// Seed drives the schedule; factory-built instances derive independent
	// child streams from it.
	Seed uint64
	// PanicP panics with a descriptive string — a stand-in for a decoder
	// implementation bug.
	PanicP float64
	// ErrP panics with ErrInjected — a stand-in for a decoder raising an
	// internal error mid-decode.
	ErrP float64
	// SlowP sleeps a uniform duration in [SlowMin, SlowMax] before
	// decoding — a stand-in for a pathological slow path.
	SlowP            float64
	SlowMin, SlowMax time.Duration
}

// FlakyDecoder injects the schedule in front of a real decoder. Like most
// decoders it is not safe for concurrent use on one instance.
type FlakyDecoder struct {
	inner decoder.Decoder
	cfg   FlakyConfig
	rng   *prng.Source
}

// NewFlaky wraps inner with the fault schedule.
func NewFlaky(inner decoder.Decoder, cfg FlakyConfig) *FlakyDecoder {
	return &FlakyDecoder{inner: inner, cfg: cfg, rng: prng.New(cfg.Seed)}
}

// Name implements decoder.Decoder.
func (f *FlakyDecoder) Name() string { return f.inner.Name() + " (flaky)" }

// Decode implements decoder.Decoder, applying at most one scheduled fault
// before delegating.
func (f *FlakyDecoder) Decode(s bitvec.Vec) decoder.Result {
	if f.cfg.SlowP > 0 && f.rng.Bernoulli(f.cfg.SlowP) {
		d := f.cfg.SlowMin
		if span := f.cfg.SlowMax - f.cfg.SlowMin; span > 0 {
			d += time.Duration(f.rng.Float64() * float64(span))
		}
		time.Sleep(d)
	}
	if f.cfg.PanicP > 0 && f.rng.Bernoulli(f.cfg.PanicP) {
		panic(fmt.Sprintf("faultinject: injected panic in %s", f.inner.Name()))
	}
	if f.cfg.ErrP > 0 && f.rng.Bernoulli(f.cfg.ErrP) {
		panic(ErrInjected)
	}
	return f.inner.Decode(s)
}

// Flaky wraps a decoder factory so every constructed instance carries its
// own seed-derived fault stream (instance i replays deterministically for
// a fixed construction order).
func Flaky(inner montecarlo.Factory, cfg FlakyConfig) montecarlo.Factory {
	base := prng.New(cfg.Seed)
	var mu sync.Mutex
	var n uint64
	return func(env *montecarlo.Env) (decoder.Decoder, error) {
		dec, err := inner(env)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		n++
		rng := base.Split(n)
		mu.Unlock()
		return &FlakyDecoder{inner: dec, cfg: cfg, rng: rng}, nil
	}
}

// Package compress implements syndrome compression (§7.6): the paper notes
// that "as syndromes are typically compressible, we can further employ
// Syndrome Compression to reduce bandwidth requirement". Syndromes are
// overwhelmingly zero (86–99% of rounds carry no flip at p ≤ 10⁻³), so a
// sparse encoding shrinks the control-processor → decoder link by an order
// of magnitude.
//
// Three codecs are provided, from trivial to entropy-aware:
//
//   - Dense: the raw bitmap (the baseline Table 7 assumes).
//   - Sparse: a set-bit index list with a count prefix — the scheme AFS
//     describes, optimal for very low Hamming weights.
//   - Rice: Golomb–Rice coding of the gaps between set bits, which tracks
//     the geometric gap distribution across the whole operating range.
//
// All codecs are exact (lossless) and allocation-light; Ratio reports the
// achieved bandwidth reduction for use in the Table 7 extension study.
package compress

import (
	"fmt"
	"math/bits"

	"astrea/internal/bitvec"
)

// Codec encodes syndromes to bytes and back.
type Codec interface {
	// Name identifies the codec in reports.
	Name() string
	// Encode appends the encoding of s to dst and returns it.
	Encode(s bitvec.Vec, dst []byte) []byte
	// Decode reconstructs a length-n syndrome into out from b, returning
	// the number of bytes consumed.
	Decode(b []byte, out bitvec.Vec) (int, error)
}

// Dense is the identity codec: ceil(n/8) bytes.
type Dense struct{}

// Name implements Codec.
func (Dense) Name() string { return "dense" }

// Encode implements Codec.
func (Dense) Encode(s bitvec.Vec, dst []byte) []byte {
	n := s.Len()
	for i := 0; i < n; i += 8 {
		var b byte
		for j := 0; j < 8 && i+j < n; j++ {
			if s.Get(i + j) {
				b |= 1 << uint(j)
			}
		}
		dst = append(dst, b)
	}
	return dst
}

// Decode implements Codec.
func (Dense) Decode(b []byte, out bitvec.Vec) (int, error) {
	n := out.Len()
	need := (n + 7) / 8
	if len(b) < need {
		return 0, fmt.Errorf("compress: dense payload truncated: %d < %d bytes", len(b), need)
	}
	out.Reset()
	for i := 0; i < n; i++ {
		if b[i/8]&(1<<uint(i%8)) != 0 {
			out.Set(i)
		}
	}
	return need, nil
}

// Sparse encodes the Hamming weight as one byte followed by one
// ceil(log2 n)-bit index per set bit (byte-packed). Weights above 255 fall
// back to a dense payload flagged by a 0xFF sentinel.
type Sparse struct{}

// Name implements Codec.
func (Sparse) Name() string { return "sparse" }

func indexBits(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// Encode implements Codec.
func (Sparse) Encode(s bitvec.Vec, dst []byte) []byte {
	ones := s.Ones(nil)
	if len(ones) >= 0xFF {
		dst = append(dst, 0xFF)
		return Dense{}.Encode(s, dst)
	}
	dst = append(dst, byte(len(ones)))
	ib := indexBits(s.Len())
	var acc uint64
	accBits := 0
	for _, idx := range ones {
		acc |= uint64(idx) << uint(accBits)
		accBits += ib
		for accBits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			accBits -= 8
		}
	}
	if accBits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// Decode implements Codec.
func (Sparse) Decode(b []byte, out bitvec.Vec) (int, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("compress: empty sparse payload")
	}
	if b[0] == 0xFF {
		consumed, err := (Dense{}).Decode(b[1:], out)
		return consumed + 1, err
	}
	count := int(b[0])
	ib := indexBits(out.Len())
	need := 1 + (count*ib+7)/8
	if len(b) < need {
		return 0, fmt.Errorf("compress: sparse payload truncated: %d < %d bytes", len(b), need)
	}
	out.Reset()
	var acc uint64
	accBits := 0
	pos := 1
	for i := 0; i < count; i++ {
		for accBits < ib {
			acc |= uint64(b[pos]) << uint(accBits)
			pos++
			accBits += 8
		}
		idx := int(acc & (1<<uint(ib) - 1))
		acc >>= uint(ib)
		accBits -= ib
		if idx >= out.Len() {
			return 0, fmt.Errorf("compress: sparse index %d out of range %d", idx, out.Len())
		}
		out.Set(idx)
	}
	return need, nil
}

// Rice is Golomb–Rice gap coding: the gaps between consecutive set bits
// (and the terminator) are coded as quotient-unary/remainder-binary with
// parameter K. K should approximate log2(mean gap); NewRice picks it from
// the expected set-bit density.
type Rice struct {
	K uint
}

// NewRice returns a Rice codec tuned for syndromes of length n with
// expected Hamming weight w.
func NewRice(n int, expectedWeight float64) Rice {
	if expectedWeight < 0.25 {
		expectedWeight = 0.25
	}
	gap := float64(n) / (expectedWeight + 1)
	k := uint(0)
	for float64(uint(1)<<(k+1)) < gap {
		k++
	}
	return Rice{K: k}
}

// Name implements Codec.
func (r Rice) Name() string { return fmt.Sprintf("rice(k=%d)", r.K) }

type bitWriter struct {
	dst  []byte
	acc  uint64
	nacc int
}

func (w *bitWriter) write(v uint64, n int) {
	w.acc |= v << uint(w.nacc)
	w.nacc += n
	for w.nacc >= 8 {
		w.dst = append(w.dst, byte(w.acc))
		w.acc >>= 8
		w.nacc -= 8
	}
}

func (w *bitWriter) flush() []byte {
	if w.nacc > 0 {
		w.dst = append(w.dst, byte(w.acc))
		w.acc = 0
		w.nacc = 0
	}
	return w.dst
}

type bitReader struct {
	src  []byte
	pos  int
	acc  uint64
	nacc int
}

func (r *bitReader) read(n int) (uint64, error) {
	for r.nacc < n {
		if r.pos >= len(r.src) {
			return 0, fmt.Errorf("compress: rice payload truncated")
		}
		r.acc |= uint64(r.src[r.pos]) << uint(r.nacc)
		r.pos++
		r.nacc += 8
	}
	v := r.acc & (1<<uint(n) - 1)
	r.acc >>= uint(n)
	r.nacc -= n
	return v, nil
}

func (r *bitReader) readUnary() (int, error) {
	q := 0
	for {
		b, err := r.read(1)
		if err != nil {
			return 0, err
		}
		if b == 1 {
			return q, nil
		}
		q++
		if q > 1<<20 {
			return 0, fmt.Errorf("compress: runaway unary code")
		}
	}
}

// Encode implements Codec. Gaps are delta-1 encoded; a final gap to one
// past the end terminates the stream.
func (r Rice) Encode(s bitvec.Vec, dst []byte) []byte {
	w := bitWriter{dst: dst}
	prev := -1
	emit := func(gap int) {
		q := uint64(gap) >> r.K
		for i := uint64(0); i < q; i++ {
			w.write(0, 1)
		}
		w.write(1, 1) // unary terminator
		if r.K > 0 {
			w.write(uint64(gap)&(1<<r.K-1), int(r.K))
		}
	}
	for _, idx := range s.Ones(nil) {
		emit(idx - prev - 1)
		prev = idx
	}
	emit(s.Len() - prev - 1) // terminator gap
	return w.flush()
}

// Decode implements Codec.
func (r Rice) Decode(b []byte, out bitvec.Vec) (int, error) {
	rd := bitReader{src: b}
	out.Reset()
	pos := -1
	for {
		q, err := rd.readUnary()
		if err != nil {
			return 0, err
		}
		gap := q << r.K
		if r.K > 0 {
			rem, err := rd.read(int(r.K))
			if err != nil {
				return 0, err
			}
			gap |= int(rem)
		}
		pos += gap + 1
		if pos == out.Len() {
			return rd.pos, nil
		}
		if pos > out.Len() {
			return 0, fmt.Errorf("compress: rice index %d beyond length %d", pos, out.Len())
		}
		out.Set(pos)
	}
}

// Wire codec identifiers. The decode service negotiates the per-stream
// codec by these IDs during its handshake (internal/server); they are part
// of the wire protocol and must stay stable.
const (
	IDDense  uint8 = 0
	IDSparse uint8 = 1
	IDRice   uint8 = 2
)

// IDOf returns the wire identifier of a codec.
func IDOf(c Codec) (uint8, bool) {
	switch c.(type) {
	case Dense:
		return IDDense, true
	case Sparse:
		return IDSparse, true
	case Rice:
		return IDRice, true
	}
	return 0, false
}

// ForID builds the codec for a wire identifier. riceK is the Golomb–Rice
// parameter carried alongside IDRice (ignored for the other codecs); both
// peers must use the same K, so the server picks it and announces it in the
// handshake.
func ForID(id uint8, riceK uint) (Codec, error) {
	switch id {
	case IDDense:
		return Dense{}, nil
	case IDSparse:
		return Sparse{}, nil
	case IDRice:
		if riceK > 32 {
			return nil, fmt.Errorf("compress: rice parameter k=%d out of range", riceK)
		}
		return Rice{K: riceK}, nil
	}
	return nil, fmt.Errorf("compress: unknown codec id %d", id)
}

// IDByName maps a human codec name ("dense", "sparse", "rice") to its wire
// identifier.
func IDByName(name string) (uint8, error) {
	switch name {
	case "dense":
		return IDDense, nil
	case "sparse":
		return IDSparse, nil
	case "rice":
		return IDRice, nil
	}
	return 0, fmt.Errorf("compress: unknown codec %q (want dense, sparse or rice)", name)
}

// Stats aggregates codec performance over a syndrome stream.
type Stats struct {
	Codec      string
	Syndromes  int
	TotalBytes int
	DenseBytes int
	MaxBytes   int
}

// MeanBytes is the average encoded size.
func (s Stats) MeanBytes() float64 {
	if s.Syndromes == 0 {
		return 0
	}
	return float64(s.TotalBytes) / float64(s.Syndromes)
}

// Ratio is the mean compression ratio versus the dense bitmap.
func (s Stats) Ratio() float64 {
	if s.TotalBytes == 0 {
		return 0
	}
	return float64(s.DenseBytes) / float64(s.TotalBytes)
}

// Measure encodes every syndrome produced by next (until it returns false)
// and tallies sizes. The round-trip is verified on every syndrome; any
// mismatch is reported as an error.
func Measure(c Codec, n int, next func(dst bitvec.Vec) bool) (Stats, error) {
	st := Stats{Codec: c.Name()}
	s := bitvec.New(n)
	back := bitvec.New(n)
	var buf []byte
	dense := (n + 7) / 8
	for next(s) {
		buf = c.Encode(s, buf[:0])
		consumed, err := c.Decode(buf, back)
		if err != nil {
			return st, err
		}
		if consumed != len(buf) {
			return st, fmt.Errorf("compress: codec %s consumed %d of %d bytes", c.Name(), consumed, len(buf))
		}
		if !back.Equal(s) {
			return st, fmt.Errorf("compress: codec %s round-trip mismatch", c.Name())
		}
		st.Syndromes++
		st.TotalBytes += len(buf)
		st.DenseBytes += dense
		if len(buf) > st.MaxBytes {
			st.MaxBytes = len(buf)
		}
	}
	return st, nil
}

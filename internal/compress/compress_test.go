package compress

import (
	"testing"
	"testing/quick"

	"astrea/internal/bitvec"
	"astrea/internal/dem"
	"astrea/internal/montecarlo"
	"astrea/internal/prng"
)

func codecs(n int) []Codec {
	return []Codec{Dense{}, Sparse{}, NewRice(n, 2), Rice{K: 0}, Rice{K: 6}}
}

func TestRoundTripHandPicked(t *testing.T) {
	cases := [][]int{
		{},
		{0},
		{15},
		{0, 15},
		{0, 1, 2, 3},
		{3, 7, 8, 9, 14},
	}
	const n = 16
	for _, c := range codecs(n) {
		for _, idx := range cases {
			s := bitvec.FromIndices(n, idx...)
			buf := c.Encode(s, nil)
			out := bitvec.New(n)
			consumed, err := c.Decode(buf, out)
			if err != nil {
				t.Fatalf("%s %v: %v", c.Name(), idx, err)
			}
			if consumed != len(buf) {
				t.Fatalf("%s %v: consumed %d of %d", c.Name(), idx, consumed, len(buf))
			}
			if !out.Equal(s) {
				t.Fatalf("%s %v: round-trip mismatch", c.Name(), idx)
			}
		}
	}
}

// Property: every codec round-trips arbitrary syndromes of arbitrary
// lengths.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16, density uint8) bool {
		n := int(nRaw%700) + 1
		rng := prng.New(uint64(seed))
		p := float64(density%100) / 100
		s := bitvec.New(n)
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				s.Set(i)
			}
		}
		for _, c := range codecs(n) {
			buf := c.Encode(s, nil)
			out := bitvec.New(n)
			consumed, err := c.Decode(buf, out)
			if err != nil || consumed != len(buf) || !out.Equal(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	s := bitvec.FromIndices(64, 3, 40, 60)
	for _, c := range codecs(64) {
		buf := c.Encode(s, nil)
		if len(buf) < 2 {
			continue
		}
		out := bitvec.New(64)
		if _, err := c.Decode(buf[:len(buf)-1], out); err == nil {
			// Rice can terminate early if the final gap fits; only dense and
			// sparse must hard-fail.
			if c.Name() == "dense" || c.Name() == "sparse" {
				t.Fatalf("%s accepted truncated payload", c.Name())
			}
		}
	}
}

func TestSparseHugeWeightFallsBack(t *testing.T) {
	s := bitvec.New(2048)
	for i := 0; i < 1024; i++ {
		s.Set(i * 2)
	}
	buf := (Sparse{}).Encode(s, nil)
	out := bitvec.New(2048)
	if _, err := (Sparse{}).Decode(buf, out); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(s) {
		t.Fatal("fallback round-trip failed")
	}
}

// Real syndromes at d=7, p=1e-3 must compress well below the dense bitmap
// — the §7.6 claim.
func TestCompressionOnRealSyndromes(t *testing.T) {
	env, err := montecarlo.SharedEnv(7, 7, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	n := env.Model.NumDetectors
	for _, c := range []Codec{Sparse{}, NewRice(n, env.Model.ExpectedErrors()*2)} {
		rng := prng.New(9)
		smp := dem.NewSampler(env.Model)
		shots := 0
		st, err := Measure(c, n, func(dst bitvec.Vec) bool {
			if shots >= 4000 {
				return false
			}
			shots++
			smp.Sample(rng, dst)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.Ratio() < 3 {
			t.Fatalf("%s: compression ratio %.2f on real syndromes, expected > 3x", c.Name(), st.Ratio())
		}
		if st.MaxBytes > (n+7)/8+2 {
			t.Fatalf("%s: worst case %d bytes exceeds dense %d", c.Name(), st.MaxBytes, (n+7)/8)
		}
	}
}

// The dense codec is exactly ceil(n/8) bytes always.
func TestDenseSize(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 191, 192} {
		s := bitvec.New(n)
		buf := (Dense{}).Encode(s, nil)
		if len(buf) != (n+7)/8 {
			t.Fatalf("n=%d dense size %d", n, len(buf))
		}
	}
}

func BenchmarkSparseEncode(b *testing.B) {
	s := bitvec.FromIndices(192, 5, 60, 100, 101)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = (Sparse{}).Encode(s, buf[:0])
	}
}

func BenchmarkRiceEncode(b *testing.B) {
	s := bitvec.FromIndices(192, 5, 60, 100, 101)
	c := NewRice(192, 4)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = c.Encode(s, buf[:0])
	}
}

func TestCodecIDRegistry(t *testing.T) {
	for _, c := range []Codec{Dense{}, Sparse{}, Rice{K: 4}} {
		id, ok := IDOf(c)
		if !ok {
			t.Fatalf("%s has no wire ID", c.Name())
		}
		back, err := ForID(id, 4)
		if err != nil {
			t.Fatal(err)
		}
		if back.Name() != c.Name() {
			t.Fatalf("ID %d round-trip: %s != %s", id, back.Name(), c.Name())
		}
	}
	if _, err := ForID(99, 0); err == nil {
		t.Fatal("unknown codec ID must error")
	}
	if _, err := ForID(IDRice, 64); err == nil {
		t.Fatal("absurd rice K must error")
	}
	for name, want := range map[string]uint8{"dense": IDDense, "sparse": IDSparse, "rice": IDRice} {
		got, err := IDByName(name)
		if err != nil || got != want {
			t.Fatalf("IDByName(%q) = %d, %v", name, got, err)
		}
	}
	if _, err := IDByName("zstd"); err == nil {
		t.Fatal("unknown codec name must error")
	}
}

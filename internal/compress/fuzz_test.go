package compress

import (
	"testing"

	"astrea/internal/bitvec"
)

// FuzzCodecRoundTrip feeds arbitrary bitmaps through every codec; run with
// `go test -fuzz=FuzzCodecRoundTrip ./internal/compress` for continuous
// fuzzing, or normally for the seed corpus.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(8))
	f.Add([]byte{0xFF, 0x01}, uint16(16))
	f.Add([]byte{0xAA, 0x55, 0xAA}, uint16(23))
	f.Fuzz(func(t *testing.T, raw []byte, nRaw uint16) {
		n := int(nRaw%1000) + 1
		s := bitvec.New(n)
		for i := 0; i < n && i/8 < len(raw); i++ {
			if raw[i/8]&(1<<uint(i%8)) != 0 {
				s.Set(i)
			}
		}
		for _, c := range []Codec{Dense{}, Sparse{}, NewRice(n, 3), Rice{K: 0}} {
			buf := c.Encode(s, nil)
			out := bitvec.New(n)
			consumed, err := c.Decode(buf, out)
			if err != nil {
				t.Fatalf("%s: decode of own encoding failed: %v", c.Name(), err)
			}
			if consumed != len(buf) {
				t.Fatalf("%s: consumed %d of %d", c.Name(), consumed, len(buf))
			}
			if !out.Equal(s) {
				t.Fatalf("%s: round-trip mismatch", c.Name())
			}
		}
	})
}

// FuzzDecodeArbitraryBytes ensures decoders never panic or loop on garbage
// payloads — they must either error or produce a valid syndrome.
func FuzzDecodeArbitraryBytes(f *testing.F) {
	f.Add([]byte{0x00}, uint16(16))
	f.Add([]byte{0xFF, 0xFF, 0xFF}, uint16(64))
	f.Fuzz(func(t *testing.T, payload []byte, nRaw uint16) {
		n := int(nRaw%500) + 1
		out := bitvec.New(n)
		for _, c := range []Codec{Dense{}, Sparse{}, NewRice(n, 3)} {
			consumed, err := c.Decode(payload, out)
			if err == nil && (consumed < 0 || consumed > len(payload)) {
				t.Fatalf("%s: consumed %d of %d without error", c.Name(), consumed, len(payload))
			}
		}
	})
}

package compress

import (
	"fmt"
	"testing"

	"astrea/internal/bitvec"
	"astrea/internal/prng"
)

// truncVectors builds syndromes covering each codec's structural edges:
// empty, single bit at each end, alternating, random, and (for n ≥ 255)
// the high-weight case that drives Sparse into its 0xFF dense fallback.
func truncVectors(n int) []bitvec.Vec {
	vs := []bitvec.Vec{bitvec.New(n)}
	one := bitvec.New(n)
	one.Set(0)
	vs = append(vs, one)
	last := bitvec.New(n)
	last.Set(n - 1)
	vs = append(vs, last)
	alt := bitvec.New(n)
	for i := 0; i < n; i += 2 {
		alt.Set(i)
	}
	vs = append(vs, alt)
	rng := prng.New(uint64(n))
	rnd := bitvec.New(n)
	for i := 0; i < n; i++ {
		if rng.Bernoulli(0.1) {
			rnd.Set(i)
		}
	}
	vs = append(vs, rnd)
	if n >= 256 {
		heavy := bitvec.New(n)
		for i := 0; i < 255; i++ {
			heavy.Set(i)
		}
		vs = append(vs, heavy) // weight ≥ 255 ⇒ Sparse emits the 0xFF fallback
	}
	return vs
}

// decodeCut decodes a byte-capped slice, converting any panic into an
// error so one bad boundary doesn't abort the sweep. The full-capacity
// re-slice b[:k:k] makes an over-read a bounds panic instead of a silent
// read of bytes the caller never handed over.
func decodeCut(c Codec, b []byte, k int, out bitvec.Vec) (consumed int, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("panic: %v", v)
			consumed = -1
		}
	}()
	return c.Decode(b[:k:k], out)
}

// TestDecodeTruncatedErrors cuts every valid encoding at every byte
// boundary: each strict prefix must return an error — never panic, never
// read past the cut, never succeed on partial data.
func TestDecodeTruncatedErrors(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 63, 64, 65, 300} {
		codecs := []Codec{Dense{}, Sparse{}, NewRice(n, 2), Rice{K: 0}}
		for _, c := range codecs {
			for vi, s := range truncVectors(n) {
				enc := c.Encode(s, nil)
				out := bitvec.New(n)
				for k := 0; k < len(enc); k++ {
					consumed, err := decodeCut(c, enc, k, out)
					if consumed == -1 {
						t.Errorf("%s n=%d vec=%d cut=%d/%d: decode panicked: %v",
							c.Name(), n, vi, k, len(enc), err)
						continue
					}
					if err == nil {
						t.Errorf("%s n=%d vec=%d cut=%d/%d: truncated decode succeeded",
							c.Name(), n, vi, k, len(enc))
					}
				}
			}
		}
	}
}

// TestDecodeOversizedConsumesExactly appends garbage past every valid
// encoding: the decode must succeed, consume exactly the original length
// (frame reassembly depends on it), and reproduce the syndrome untouched
// by the trailing bytes.
func TestDecodeOversizedConsumesExactly(t *testing.T) {
	garbage := []byte{0xAA, 0x55, 0xFF, 0x00, 0x81}
	for _, n := range []int{1, 8, 65, 300} {
		codecs := []Codec{Dense{}, Sparse{}, NewRice(n, 2), Rice{K: 0}}
		for _, c := range codecs {
			for vi, s := range truncVectors(n) {
				enc := c.Encode(s, nil)
				padded := append(append([]byte(nil), enc...), garbage...)
				out := bitvec.New(n)
				consumed, err := decodeCut(c, padded, len(padded), out)
				if consumed == -1 || err != nil {
					t.Errorf("%s n=%d vec=%d: oversized decode failed: %v", c.Name(), n, vi, err)
					continue
				}
				if consumed != len(enc) {
					t.Errorf("%s n=%d vec=%d: consumed %d bytes, want exactly %d",
						c.Name(), n, vi, consumed, len(enc))
				}
				if !out.Equal(s) {
					t.Errorf("%s n=%d vec=%d: oversized decode corrupted the syndrome", c.Name(), n, vi)
				}
			}
		}
	}
}

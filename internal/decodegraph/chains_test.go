package decodegraph

import (
	"math"
	"testing"
)

// Chains must agree with the GWT entry they realise: same total weight and
// same observable parity, for every pair and every boundary chain.
func TestChainsMatchGWT(t *testing.T) {
	_, _, g, gwt := buildGWT(t, 3, 1e-3)
	n := g.N
	for i := 0; i < n; i++ {
		steps, err := g.ChainBetween(i, g.Boundary())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ChainWeight(steps)-gwt.BoundaryWeight(i)) > 1e-9 {
			t.Fatalf("boundary chain weight of %d: %v vs GWT %v", i, ChainWeight(steps), gwt.BoundaryWeight(i))
		}
		if ChainObs(steps) != gwt.Obs(i, i) {
			t.Fatalf("boundary chain obs of %d mismatch", i)
		}
		if steps[len(steps)-1].To != g.Boundary() || steps[0].From != i {
			t.Fatalf("chain endpoints wrong: %+v", steps)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			steps, err := g.ChainBetween(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(ChainWeight(steps)-gwt.Weight(i, j)) > 1e-9 {
				t.Fatalf("chain (%d,%d) weight %v vs GWT %v", i, j, ChainWeight(steps), gwt.Weight(i, j))
			}
			if ChainObs(steps) != gwt.Obs(i, j) {
				t.Fatalf("chain (%d,%d) obs mismatch", i, j)
			}
			// Continuity: steps form a walk from i to j (possibly through
			// the boundary).
			at := i
			for _, s := range steps {
				if s.From != at {
					t.Fatalf("discontinuous chain at %+v (expected from %d)", s, at)
				}
				at = s.To
			}
			if at != j {
				t.Fatalf("chain (%d,%d) ends at %d", i, j, at)
			}
		}
	}
}

// Through-boundary pairs must produce chains that pass through the boundary
// node.
func TestThroughBoundaryChains(t *testing.T) {
	_, _, g, gwt := buildGWT(t, 5, 1e-3)
	found := false
	for i := 0; i < g.N && !found; i++ {
		for j := i + 1; j < g.N; j++ {
			if gwt.BoundaryWeight(i)+gwt.BoundaryWeight(j) < gwt.DirectWeight(i, j)-1e-9 {
				steps, err := g.ChainBetween(i, j)
				if err != nil {
					t.Fatal(err)
				}
				through := false
				for _, s := range steps {
					if s.To == g.Boundary() || s.From == g.Boundary() {
						through = true
					}
				}
				if !through {
					t.Fatalf("pair (%d,%d) should route through the boundary", i, j)
				}
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no through-boundary pair at this distance")
	}
}

func TestChainBetweenValidation(t *testing.T) {
	_, _, g, _ := buildGWT(t, 3, 1e-3)
	if _, err := g.ChainBetween(-1, 0); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := g.ChainBetween(0, g.N+5); err == nil {
		t.Fatal("out-of-range partner accepted")
	}
	// i == j means the boundary chain.
	steps, err := g.ChainBetween(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if steps[len(steps)-1].To != g.Boundary() {
		t.Fatal("self pair must mean the boundary chain")
	}
}

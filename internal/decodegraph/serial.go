package decodegraph

import (
	"fmt"

	"astrea/internal/circuit"
)

// This file exposes the GWT's raw table content for the artifact layer
// (internal/artifact), which serializes a built table to disk so serving
// processes can load it instead of re-running the all-pairs Dijkstra.
// The slices are the live backing arrays, not copies: a GWT is immutable
// after construction, so sharing is safe as long as callers honour that.

// GWTData is the exported raw content of a Global Weight Table. Every slice
// has length N×N in row-major order; the diagonal carries the boundary
// chain, exactly as in GWT itself.
type GWTData struct {
	N         int
	W         []float64
	Q         []uint8
	Obs       []uint64
	Direct    []float64
	DirectObs []uint64
}

// Data returns views over the table's backing arrays for serialization.
// The returned slices must not be modified.
func (t *GWT) Data() GWTData {
	return GWTData{
		N:         t.N,
		W:         t.w,
		Q:         t.q,
		Obs:       t.obs,
		Direct:    t.direct,
		DirectObs: t.directObs,
	}
}

// GWTFromData reassembles a GWT from raw table content (the inverse of
// Data), validating that every slice has the N×N length the table's
// accessors assume. The GWT takes ownership of the slices; callers must not
// modify them afterwards.
func GWTFromData(d GWTData, metas []circuit.DetMeta) (*GWT, error) {
	if d.N < 0 {
		return nil, fmt.Errorf("decodegraph: negative GWT dimension %d", d.N)
	}
	want := d.N * d.N
	for _, c := range []struct {
		name string
		got  int
	}{
		{"w", len(d.W)},
		{"q", len(d.Q)},
		{"obs", len(d.Obs)},
		{"direct", len(d.Direct)},
		{"directObs", len(d.DirectObs)},
	} {
		if c.got != want {
			return nil, fmt.Errorf("decodegraph: GWT %s table has %d entries, want %d×%d=%d", c.name, c.got, d.N, d.N, want)
		}
	}
	if len(metas) != d.N {
		return nil, fmt.Errorf("decodegraph: %d detector metas for %d-node GWT", len(metas), d.N)
	}
	return &GWT{
		N:         d.N,
		Metas:     metas,
		w:         d.W,
		q:         d.Q,
		obs:       d.Obs,
		direct:    d.Direct,
		directObs: d.DirectObs,
	}, nil
}

package decodegraph

import (
	"encoding/binary"
	"fmt"
	"math"

	"astrea/internal/dem"
)

// Fingerprint is a stable 64-bit digest of one decoding configuration: the
// detector error model's mechanisms (detector footprints, observable masks
// and probabilities) plus the quantised Global Weight Table (weights and
// chain observable parities). Two decode servers produce byte-identical
// corrections for the same syndrome stream only if they agree on exactly
// this data, so the digest is what a replicated fleet compares at handshake
// time: a replica deployed with a perturbed noise model, a different
// distance, or a stale GWT hashes differently and can be quarantined before
// it mixes corrections from the wrong graph into a stream.
//
// The hash is FNV-1a over a fixed little-endian serialisation; it depends
// only on the model and table contents, never on pointer identity or map
// order, so it is reproducible across processes, architectures and
// restarts. It is an integrity check against misconfiguration, not a
// cryptographic commitment.
type Fingerprint uint64

// String renders the digest the way operators compare it: 16 hex digits.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x", uint64(f)) }

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// hasher is a minimal FNV-1a accumulator over primitive values.
type hasher struct{ h uint64 }

func (s *hasher) bytes(b []byte) {
	for _, c := range b {
		s.h = (s.h ^ uint64(c)) * fnvPrime
	}
}

func (s *hasher) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	s.bytes(b[:])
}

// FingerprintOf digests a detector error model and its quantised GWT.
// Either argument may be nil, in which case that half is simply absent from
// the digest (the server always supplies both).
func FingerprintOf(m *dem.Model, t *GWT) Fingerprint {
	s := hasher{h: fnvOffset}
	if m != nil {
		s.u64(uint64(m.NumDetectors))
		s.u64(uint64(m.NumObservables))
		s.u64(uint64(len(m.Errors)))
		for _, e := range m.Errors {
			s.u64(uint64(len(e.Detectors)))
			for _, d := range e.Detectors {
				s.u64(uint64(d))
			}
			s.u64(e.ObsMask)
			s.u64(math.Float64bits(e.P))
		}
	}
	if t != nil {
		s.u64(uint64(t.N))
		s.bytes(t.q)
		for _, o := range t.obs {
			s.u64(o)
		}
	}
	return Fingerprint(s.h)
}

// ParseFingerprint parses the 16-hex-digit rendering produced by String.
func ParseFingerprint(s string) (Fingerprint, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("decodegraph: fingerprint %q is %d chars, want 16", s, len(s))
	}
	var v uint64
	for _, c := range s {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, fmt.Errorf("decodegraph: fingerprint %q has non-hex char %q", s, c)
		}
		v = v<<4 | d
	}
	return Fingerprint(v), nil
}

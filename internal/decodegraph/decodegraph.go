// Package decodegraph turns a detector error model into the weighted
// decoding graph of §2.2 and the Global Weight Table (GWT) of §5.1.
//
// Nodes are detectors; each DEM mechanism contributes either an edge between
// two detectors or an edge from one detector to the (virtual) boundary. Edge
// weight is −log10(p), so lower weight means higher probability and adding
// weights along a path multiplies probabilities.
//
// The GWT holds, for every detector pair (i, j), the weight of the most
// probable error chain flipping exactly that pair — the all-pairs shortest
// path through the sparse graph — and on the diagonal the weight of the most
// probable chain connecting detector i to the boundary. Every entry also
// records whether that chain flips each logical observable, which is how a
// matching is converted into a logical-correction prediction. Pair weights
// are the minimum of the direct path and the two boundary paths
// (w(i,bnd) + w(j,bnd)): with that convention, exhaustively pairing up the
// flagged detectors (plus one explicit boundary node when the count is odd)
// is exactly equivalent to minimum-weight matching with an unlimited-degree
// boundary, which is what makes Astrea's pairing-only brute force an exact
// MWPM (§5.2).
//
// Entries are also quantised to the 8-bit fixed-point representation the
// hardware design stores in SRAM (4 fractional bits, i.e. 1/16 decade
// resolution).
package decodegraph

import (
	"fmt"
	"math"
	"sync"

	"astrea/internal/circuit"
	"astrea/internal/dem"
)

// QFracBits is the number of fractional bits in a quantised 8-bit weight.
const QFracBits = 4

// QScale is the fixed-point scale factor: quantised = round(weight × QScale).
const QScale = 1 << QFracBits

// QMax is the largest representable quantised weight; entries that exceed it
// saturate (the hardware treats them as "effectively impossible").
const QMax = 255

// Quantize converts a float weight (decades) to the 8-bit GWT encoding.
func Quantize(w float64) uint8 {
	q := math.Round(w * QScale)
	if q < 0 {
		return 0
	}
	if q > QMax {
		return QMax
	}
	return uint8(q)
}

// Dequantize converts an 8-bit GWT weight back to decades.
func Dequantize(q uint8) float64 { return float64(q) / QScale }

// halfEdge is one directed arc of the sparse graph.
type halfEdge struct {
	to  int
	w   float64
	obs uint64
}

// Graph is the sparse decoding graph of one detector error model.
type Graph struct {
	// N is the number of detector nodes; the virtual boundary is node N.
	N int
	// Metas carries per-detector coordinates (stabilizer index, round).
	Metas []circuit.DetMeta

	adj [][]halfEdge // length N+1; adj[N] is the boundary's adjacency

	// Lazily built sparse-engine views (see sparse.go). Graphs are shared
	// across decoder pools, so the views are built once and reused.
	sparseOnce sync.Once
	csr        *CSR
	bndW       []float64
	bndObs     []uint64
}

// Boundary returns the node index used for the virtual boundary.
func (g *Graph) Boundary() int { return g.N }

// Edge is one undirected edge of the sparse decoding graph as seen from a
// node: the partner (possibly the boundary index), the float weight, and
// the observable mask of the underlying mechanism.
type Edge struct {
	To  int
	W   float64
	Obs uint64
}

// Neighbors returns node u's incident edges (u may be the boundary index).
// The returned slice is owned by the graph; do not modify it.
func (g *Graph) Neighbors(u int) []Edge {
	out := make([]Edge, len(g.adj[u]))
	for i, e := range g.adj[u] {
		out[i] = Edge{To: e.to, W: e.w, Obs: e.obs}
	}
	return out
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// FromModel builds the sparse decoding graph from a DEM. Mechanisms with one
// detector become boundary edges; parallel edges keep only the lowest
// weight (they were already probability-merged per footprint by the DEM, so
// parallel edges here differ in observable effect only through distinct
// footprints, which FromCircuit rejects).
func FromModel(m *dem.Model, metas []circuit.DetMeta) (*Graph, error) {
	if len(metas) != m.NumDetectors {
		return nil, fmt.Errorf("decodegraph: %d metas for %d detectors", len(metas), m.NumDetectors)
	}
	g := &Graph{
		N:     m.NumDetectors,
		Metas: metas,
		adj:   make([][]halfEdge, m.NumDetectors+1),
	}
	for _, e := range m.Errors {
		if e.P <= 0 || e.P >= 1 {
			return nil, fmt.Errorf("decodegraph: mechanism probability %v out of (0,1)", e.P)
		}
		w := -math.Log10(e.P)
		var u, v int
		switch len(e.Detectors) {
		case 1:
			u, v = e.Detectors[0], g.N
		case 2:
			u, v = e.Detectors[0], e.Detectors[1]
		default:
			return nil, fmt.Errorf("decodegraph: mechanism with %d detectors", len(e.Detectors))
		}
		g.adj[u] = append(g.adj[u], halfEdge{to: v, w: w, obs: e.ObsMask})
		g.adj[v] = append(g.adj[v], halfEdge{to: u, w: w, obs: e.ObsMask})
	}
	return g, nil
}

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	node int
	dist float64
}

// minHeap is a typed binary min-heap of Dijkstra frontier entries, keyed on
// dist. Unlike container/heap it boxes nothing through interface{} and its
// backing array is reused across runs (reset keeps the capacity), so the
// BuildGWT hot loop — one Dijkstra per node — performs no per-push
// allocations after warm-up.
type minHeap struct {
	items []pqItem
}

func newMinHeap(capacity int) *minHeap {
	return &minHeap{items: make([]pqItem, 0, capacity)}
}

func (h *minHeap) reset() { h.items = h.items[:0] }

func (h *minHeap) push(it pqItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].dist <= h.items[i].dist {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *minHeap) pop() pqItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && h.items[r].dist < h.items[l].dist {
			m = r
		}
		if h.items[i].dist <= h.items[m].dist {
			break
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		i = m
	}
	return top
}

// shortestFrom runs Dijkstra from src over the N+1 node graph, filling dist
// and the observable parity of the chosen shortest path per node. The
// caller supplies the frontier heap so one allocation serves every source.
//
// The boundary node is an endpoint, never an intermediate hop: unless it is
// the source it is not expanded, so dist[j] for a detector source is the
// weight of the best boundary-avoiding ("direct") chain. A route through
// the boundary is by definition two boundary chains, which the GWT fold and
// the matching formulations account for separately as bnd(i)+bnd(j).
func (g *Graph) shortestFrom(src int, dist []float64, obs []uint64, h *minHeap) {
	for i := range dist {
		dist[i] = math.Inf(1)
		obs[i] = 0
	}
	dist[src] = 0
	h.reset()
	h.push(pqItem{node: src})
	for len(h.items) > 0 {
		it := h.pop()
		if it.dist > dist[it.node] {
			continue
		}
		if it.node == g.N && src != g.N {
			continue
		}
		for _, e := range g.adj[it.node] {
			nd := it.dist + e.w
			if nd < dist[e.to] {
				dist[e.to] = nd
				obs[e.to] = obs[it.node] ^ e.obs
				h.push(pqItem{node: e.to, dist: nd})
			}
		}
	}
}

// GWT is the Global Weight Table: dense all-pairs chain weights with the
// boundary chain on the diagonal, in both float and hardware (8-bit
// quantised) form, plus the observable parity of each chain.
type GWT struct {
	N     int
	Metas []circuit.DetMeta

	w   []float64 // N×N, row-major; w[i*N+i] is the boundary weight of i
	q   []uint8
	obs []uint64

	// direct holds the raw all-pairs shortest paths without the
	// through-boundary alternative, with matching observable parities; used
	// by the boundary-duplication MWPM formulation and its equivalence tests.
	direct    []float64
	directObs []uint64
}

// BuildGWT computes the Global Weight Table by running Dijkstra from every
// node. Pair entries already include the through-boundary alternative
// min(direct, bnd(i)+bnd(j)).
func (g *Graph) BuildGWT() (*GWT, error) {
	n := g.N
	t := &GWT{
		N:         n,
		Metas:     g.Metas,
		w:         make([]float64, n*n),
		q:         make([]uint8, n*n),
		obs:       make([]uint64, n*n),
		direct:    make([]float64, n*n),
		directObs: make([]uint64, n*n),
	}
	dist := make([]float64, n+1)
	obs := make([]uint64, n+1)
	h := newMinHeap(n + 1)

	// All distances to the boundary first (single Dijkstra from boundary).
	g.shortestFrom(g.Boundary(), dist, obs, h)
	bndW := make([]float64, n)
	bndObs := make([]uint64, n)
	for i := 0; i < n; i++ {
		if math.IsInf(dist[i], 1) {
			return nil, fmt.Errorf("decodegraph: detector %d cannot reach the boundary", i)
		}
		bndW[i] = dist[i]
		bndObs[i] = obs[i]
		t.w[i*n+i] = dist[i]
		t.obs[i*n+i] = obs[i]
	}

	for i := 0; i < n; i++ {
		g.shortestFrom(i, dist, obs, h)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			w, o := dist[j], obs[j]
			t.direct[i*n+j] = w
			t.directObs[i*n+j] = o
			if via := bndW[i] + bndW[j]; via < w {
				w, o = via, bndObs[i]^bndObs[j]
			}
			if math.IsInf(w, 1) {
				return nil, fmt.Errorf("decodegraph: detectors %d and %d are disconnected", i, j)
			}
			t.w[i*n+j] = w
			t.obs[i*n+j] = o
		}
	}
	for k, w := range t.w {
		t.q[k] = Quantize(w)
	}
	return t, nil
}

// Weight returns the float chain weight between detectors i and j; Weight(i,
// i) is detector i's boundary chain weight.
func (t *GWT) Weight(i, j int) float64 { return t.w[i*t.N+j] }

// Q returns the 8-bit quantised chain weight, diagonal = boundary.
func (t *GWT) Q(i, j int) uint8 { return t.q[i*t.N+j] }

// Obs returns the observable mask of the chain between i and j (diagonal =
// boundary chain).
func (t *GWT) Obs(i, j int) uint64 { return t.obs[i*t.N+j] }

// BoundaryWeight is shorthand for Weight(i, i).
func (t *GWT) BoundaryWeight(i int) float64 { return t.w[i*t.N+i] }

// DirectWeight returns the raw shortest-path weight between i and j without
// the through-boundary alternative (i must differ from j). Infinite when the
// only connection runs through the boundary.
func (t *GWT) DirectWeight(i, j int) float64 { return t.direct[i*t.N+j] }

// DirectObs returns the observable mask of the direct chain between i and j.
func (t *GWT) DirectObs(i, j int) uint64 { return t.directObs[i*t.N+j] }

// WeightHistogram bins every off-diagonal GWT weight (and, separately
// included, the diagonal boundary weights) into unit-decade buckets
// [0,1), [1,2), …, which regenerates Figure 10(a)'s pair-weight
// distribution. Entries beyond maxBucket land in the last bucket.
func (t *GWT) WeightHistogram(maxBucket int) []int {
	h := make([]int, maxBucket+1)
	for i := 0; i < t.N; i++ {
		for j := i; j < t.N; j++ {
			b := int(t.w[i*t.N+j])
			if b > maxBucket {
				b = maxBucket
			}
			h[b]++
		}
	}
	return h
}

// SizeBytes is the SRAM footprint of the table at one byte per entry, the
// quantity reported in Table 6 (36 KB at d=7, 156 KB at d=9).
func (t *GWT) SizeBytes() int { return t.N * t.N }

package decodegraph

import (
	"testing"

	"astrea/internal/dem"
	"astrea/internal/surface"
)

// buildFP constructs the fingerprint for a distance-d memory experiment at
// physical error rate p, rebuilding every layer from scratch so the test
// exercises exactly the construction path two independent replicas take.
func buildFP(t *testing.T, d int, p float64) (Fingerprint, *dem.Model, *GWT) {
	t.Helper()
	code, err := surface.New(d)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := code.MemoryZ(d, p)
	if err != nil {
		t.Fatal(err)
	}
	model, err := dem.FromCircuit(cc)
	if err != nil {
		t.Fatal(err)
	}
	graph, err := FromModel(model, cc.DetMetas)
	if err != nil {
		t.Fatal(err)
	}
	gwt, err := graph.BuildGWT()
	if err != nil {
		t.Fatal(err)
	}
	return FingerprintOf(model, gwt), model, gwt
}

// TestFingerprintStable: two replicas building the same configuration from
// scratch must agree — that is the whole point of the handshake guard.
func TestFingerprintStable(t *testing.T) {
	a, _, _ := buildFP(t, 3, 1e-3)
	b, _, _ := buildFP(t, 3, 1e-3)
	if a != b {
		t.Fatalf("identical configurations hashed differently: %s vs %s", a, b)
	}
	if a == 0 {
		t.Fatal("fingerprint is zero (reserved for 'unknown')")
	}
}

// TestFingerprintDetectsPerturbation: a perturbed noise model, a different
// distance, and a mutated GWT entry must all change the digest — these are
// exactly the mis-deployments the cluster client quarantines.
func TestFingerprintDetectsPerturbation(t *testing.T) {
	base, model, gwt := buildFP(t, 3, 1e-3)
	if perturbed, _, _ := buildFP(t, 3, 2e-3); perturbed == base {
		t.Fatal("perturbed error rate not reflected in fingerprint")
	}
	if other, _, _ := buildFP(t, 5, 1e-3); other == base {
		t.Fatal("different distance not reflected in fingerprint")
	}
	// A stale GWT with one flipped quantised weight (e.g. built from an
	// older DEM) must hash differently even against the same model.
	gwt.q[0] ^= 1
	if FingerprintOf(model, gwt) == base {
		t.Fatal("mutated quantised weight not reflected in fingerprint")
	}
	gwt.q[0] ^= 1
	if FingerprintOf(model, gwt) != base {
		t.Fatal("fingerprint not a pure function of contents")
	}
}

// TestFingerprintParseRoundTrip covers the textual form operators and the
// loadgen pass around.
func TestFingerprintParseRoundTrip(t *testing.T) {
	fp, _, _ := buildFP(t, 3, 1e-3)
	back, err := ParseFingerprint(fp.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != fp {
		t.Fatalf("round trip %s -> %s", fp, back)
	}
	for _, bad := range []string{"", "zz", "123", "g123456789abcdef", "0123456789abcdef0"} {
		if _, err := ParseFingerprint(bad); err == nil {
			t.Errorf("ParseFingerprint(%q) accepted", bad)
		}
	}
}

package decodegraph

import (
	"fmt"
	"math"
)

// This file reconstructs the physical correction chains behind a matching:
// the concrete sequence of error mechanisms (graph edges) along the most
// probable path between two matched detectors, or from a detector to the
// boundary. The GWT stores only each chain's weight and logical parity —
// all a decoder needs to *score* — but a deployed decoder must emit the
// correction itself (§2.2: "errors are corrected using the shortest path
// between the parity qubits"), which is what ChainBetween provides.

// ChainStep is one edge of a correction chain.
type ChainStep struct {
	// From and To are detector indices; To may be the boundary index N.
	From, To int
	// W and Obs are the underlying mechanism's weight and logical mask.
	W   float64
	Obs uint64
}

// ChainBetween returns the most probable error chain connecting detectors
// i and j, choosing automatically between the direct path and the
// through-boundary alternative exactly as the GWT's effective weights do.
// Pass j == Boundary() (or j == i) for the chain from i to the boundary.
// The returned steps run from i towards j.
func (g *Graph) ChainBetween(i, j int) ([]ChainStep, error) {
	if i < 0 || i >= g.N {
		return nil, fmt.Errorf("decodegraph: detector %d out of range", i)
	}
	if j == i {
		j = g.Boundary()
	}
	if j != g.Boundary() && (j < 0 || j >= g.N) {
		return nil, fmt.Errorf("decodegraph: detector %d out of range", j)
	}
	direct, directW, err := g.tracePath(i, j)
	if err != nil {
		return nil, err
	}
	if j == g.Boundary() {
		return direct, nil
	}
	// Through-boundary alternative: i → boundary plus boundary → j.
	a, aw, err := g.tracePath(i, g.Boundary())
	if err != nil {
		return nil, err
	}
	b, bw, err := g.tracePath(j, g.Boundary())
	if err != nil {
		return nil, err
	}
	if directW <= aw+bw {
		return direct, nil
	}
	// Orient the second half boundary → j.
	out := append([]ChainStep(nil), a...)
	for k := len(b) - 1; k >= 0; k-- {
		s := b[k]
		out = append(out, ChainStep{From: s.To, To: s.From, W: s.W, Obs: s.Obs})
	}
	return out, nil
}

// tracePath runs Dijkstra from src and reconstructs the path to dst.
func (g *Graph) tracePath(src, dst int) ([]ChainStep, float64, error) {
	n := g.N + 1
	dist := make([]float64, n)
	prev := make([]int, n)
	prevEdge := make([]halfEdge, n)
	for k := range dist {
		dist[k] = math.Inf(1)
		prev[k] = -1
	}
	dist[src] = 0
	h := newMinHeap(n)
	h.push(pqItem{node: src})
	for len(h.items) > 0 {
		it := h.pop()
		if it.dist > dist[it.node] {
			continue
		}
		if it.node == dst {
			break
		}
		for _, e := range g.adj[it.node] {
			nd := it.dist + e.w
			if nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = it.node
				prevEdge[e.to] = e
				h.push(pqItem{node: e.to, dist: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, 0, fmt.Errorf("decodegraph: no path from %d to %d", src, dst)
	}
	var rev []ChainStep
	for at := dst; at != src; at = prev[at] {
		e := prevEdge[at]
		rev = append(rev, ChainStep{From: prev[at], To: at, W: e.w, Obs: e.obs})
	}
	// Reverse into src → dst order.
	for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
		rev[a], rev[b] = rev[b], rev[a]
	}
	return rev, dist[dst], nil
}

// ChainObs folds a chain's logical effect.
func ChainObs(steps []ChainStep) uint64 {
	var o uint64
	for _, s := range steps {
		o ^= s.Obs
	}
	return o
}

// ChainWeight sums a chain's float weight.
func ChainWeight(steps []ChainStep) float64 {
	var w float64
	for _, s := range steps {
		w += s.W
	}
	return w
}

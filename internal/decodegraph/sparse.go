package decodegraph

// This file exposes the precomputed views the sparse exact-matching engine
// (internal/sparsemwpm) works from: a flat compressed-sparse-row copy of
// the adjacency (cache-friendly truncated Dijkstras without the per-call
// slice allocation Neighbors performs) and the per-detector boundary
// chains (the same single boundary Dijkstra BuildGWT runs for the GWT
// diagonal, so the view's floats are bit-identical to the table's). Both
// are built lazily, once, and shared: a Graph is immutable after FromModel.

// CSR is a compressed-sparse-row view of the decoding graph's adjacency.
// Rows 0..N-1 are detectors, row N is the boundary. The arc list of node u
// is To/W/Obs[RowStart[u]:RowStart[u+1]], in the same order FromModel
// appended the half-edges (deterministic across builds).
type CSR struct {
	N        int
	RowStart []int32
	To       []int32
	W        []float64
	Obs      []uint64
}

// Degree returns the number of arcs incident to node u.
func (c *CSR) Degree(u int) int { return int(c.RowStart[u+1] - c.RowStart[u]) }

func (g *Graph) sparseInit() {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	c := &CSR{
		N:        g.N,
		RowStart: make([]int32, g.N+2),
		To:       make([]int32, 0, total),
		W:        make([]float64, 0, total),
		Obs:      make([]uint64, 0, total),
	}
	for u, arcs := range g.adj {
		c.RowStart[u] = int32(len(c.To))
		for _, e := range arcs {
			c.To = append(c.To, int32(e.to))
			c.W = append(c.W, e.w)
			c.Obs = append(c.Obs, e.obs)
		}
	}
	c.RowStart[g.N+1] = int32(len(c.To))
	g.csr = c

	dist := make([]float64, g.N+1)
	obs := make([]uint64, g.N+1)
	g.shortestFrom(g.Boundary(), dist, obs, newMinHeap(g.N+1))
	g.bndW = dist[:g.N]
	g.bndObs = obs[:g.N]
}

// CSR returns the flat adjacency view, building it on first use.
func (g *Graph) CSR() *CSR {
	g.sparseOnce.Do(g.sparseInit)
	return g.csr
}

// BoundaryChains returns, per detector, the weight and observable parity of
// its most probable boundary chain — the same values BuildGWT places on the
// GWT diagonal, computed by the same Dijkstra, so the two agree bit-for-bit.
// Entries are +Inf for detectors that cannot reach the boundary (BuildGWT
// rejects such graphs, so engines running over a built environment can
// assume finiteness). The returned slices are owned by the graph.
func (g *Graph) BoundaryChains() (w []float64, obs []uint64) {
	g.sparseOnce.Do(g.sparseInit)
	return g.bndW, g.bndObs
}

package decodegraph

import (
	"strings"
	"testing"
)

// FuzzParseFingerprint throws arbitrary strings at the fingerprint parser.
// It must accept exactly the 16-hex-digit renderings String produces —
// anything it does accept has to survive a String/Parse round trip, and a
// canonical (lower-case) input must reproduce itself verbatim. Operators
// paste fingerprints into -expect-fingerprint flags, so the parser is a
// trust boundary, not a convenience.
func FuzzParseFingerprint(f *testing.F) {
	f.Add("")
	f.Add("0000000000000000")
	f.Add("ffffffffffffffff")
	f.Add("DEADBEEFcafef00d")
	f.Add("deadbeefcafef00")   // 15 chars
	f.Add("deadbeefcafef00dd") // 17 chars
	f.Add("deadbeefcafeg00d")  // non-hex char
	f.Add(Fingerprint(0x0123456789ABCDEF).String())

	f.Fuzz(func(t *testing.T, s string) {
		fp, err := ParseFingerprint(s)
		if err != nil {
			return
		}
		if len(s) != 16 {
			t.Fatalf("accepted %d-char input %q", len(s), s)
		}
		back, err := ParseFingerprint(fp.String())
		if err != nil || back != fp {
			t.Fatalf("round trip diverged for %q: %v vs %v (%v)", s, back, fp, err)
		}
		if lower := strings.ToLower(s); fp.String() != lower {
			t.Fatalf("canonical form of %q is %q, want %q", s, fp.String(), lower)
		}
	})
}

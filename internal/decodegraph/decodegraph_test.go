package decodegraph

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"astrea/internal/circuit"
	"astrea/internal/dem"
	"astrea/internal/surface"
)

func buildGWT(t testing.TB, d int, p float64) (*surface.Code, *dem.Model, *Graph, *GWT) {
	t.Helper()
	code, err := surface.New(d)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := code.MemoryZ(d, p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dem.FromCircuit(cc)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromModel(m, cc.DetMetas)
	if err != nil {
		t.Fatal(err)
	}
	gwt, err := g.BuildGWT()
	if err != nil {
		t.Fatal(err)
	}
	return code, m, g, gwt
}

func TestQuantizeRoundTrip(t *testing.T) {
	for _, w := range []float64{0, 0.5, 1, 3.25, 6.0, 10.9375, 15.9375} {
		q := Quantize(w)
		if math.Abs(Dequantize(q)-w) > 0.5/QScale+1e-9 {
			t.Fatalf("quantize(%v) = %d, dequantized %v", w, q, Dequantize(q))
		}
	}
	if Quantize(-1) != 0 {
		t.Fatal("negative weights must clamp to 0")
	}
	if Quantize(1e9) != QMax {
		t.Fatal("huge weights must saturate")
	}
}

func TestQuantizeMonotonic(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		return Quantize(a) <= Quantize(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGWTBasicProperties(t *testing.T) {
	_, _, _, gwt := buildGWT(t, 5, 1e-3)
	n := gwt.N
	if n != 6*12 {
		t.Fatalf("GWT size %d, want 72 (d=5)", n)
	}
	for i := 0; i < n; i++ {
		if gwt.BoundaryWeight(i) <= 0 {
			t.Fatalf("boundary weight of %d is %v", i, gwt.BoundaryWeight(i))
		}
		for j := 0; j < n; j++ {
			w := gwt.Weight(i, j)
			if i != j && w <= 0 {
				t.Fatalf("weight(%d,%d) = %v", i, j, w)
			}
			// Symmetry.
			if math.Abs(w-gwt.Weight(j, i)) > 1e-9 {
				t.Fatalf("asymmetric weights at (%d,%d)", i, j)
			}
			if gwt.Obs(i, j) != gwt.Obs(j, i) {
				t.Fatalf("asymmetric obs at (%d,%d)", i, j)
			}
			if gwt.Q(i, j) != Quantize(w) {
				t.Fatalf("quantised entry mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// Pair weights must never exceed the two-boundary alternative, and must obey
// a relaxed triangle inequality through any third node.
func TestGWTThroughBoundaryAndTriangle(t *testing.T) {
	_, _, _, gwt := buildGWT(t, 3, 1e-3)
	n := gwt.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if gwt.Weight(i, j) > gwt.BoundaryWeight(i)+gwt.BoundaryWeight(j)+1e-9 {
				t.Fatalf("pair (%d,%d) weight %v exceeds boundary sum %v",
					i, j, gwt.Weight(i, j), gwt.BoundaryWeight(i)+gwt.BoundaryWeight(j))
			}
			for k := 0; k < n; k++ {
				if k == i || k == j {
					continue
				}
				if gwt.Weight(i, j) > gwt.Weight(i, k)+gwt.Weight(k, j)+1e-9 {
					t.Fatalf("triangle violation (%d,%d) via %d", i, j, k)
				}
			}
		}
	}
}

// Every single mechanism's own footprint must be decodable at exactly its
// own weight or better: for a pair mechanism (a, b), Weight(a, b) <=
// -log10(p); for a boundary mechanism, BoundaryWeight(a) <= -log10(p). And
// when equality holds for a unique lightest mechanism the observable parity
// must match the mechanism's.
func TestGWTDominatesSingleMechanisms(t *testing.T) {
	_, m, _, gwt := buildGWT(t, 5, 1e-3)
	for _, e := range m.Errors {
		w := -math.Log10(e.P)
		switch len(e.Detectors) {
		case 1:
			if gwt.BoundaryWeight(e.Detectors[0]) > w+1e-9 {
				t.Fatalf("boundary weight of %d worse than its own mechanism", e.Detectors[0])
			}
		case 2:
			if gwt.Weight(e.Detectors[0], e.Detectors[1]) > w+1e-9 {
				t.Fatalf("pair weight of %v worse than its own mechanism", e.Detectors)
			}
		}
	}
}

// In a memory-Z experiment the boundary chains on the two sides differ in
// observable parity: crossing the logical-Z column flips the observable.
// So both parities must appear among boundary chains.
func TestBoundaryObsParitiesBothPresent(t *testing.T) {
	_, _, _, gwt := buildGWT(t, 5, 1e-3)
	seen := map[uint64]bool{}
	for i := 0; i < gwt.N; i++ {
		seen[gwt.Obs(i, i)] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("boundary chain parities %v, want both 0 and 1", seen)
	}
}

// A full horizontal crossing: the two boundary chains of one detector near
// the left and one near the right must together flip the observable exactly
// once; equivalently the pair chain left<->right has obs parity equal to
// bndObs(l) ^ bndObs(r) ^ 1 only if the direct path is cheaper... we assert
// the physical statement instead: for any i, j, obs(i,j) ^ obs(i,i) ^
// obs(j,j) is the parity of a closed loop through the boundary, which must
// equal 1 exactly when the loop crosses the lattice an odd number of
// times — i.e. when the direct chain and the boundary chains use opposite
// sides. Weak invariant: XOR is 0 or 1, and at least one pair in round 0 has
// XOR 1 (a loop around... through both sides).
func TestLoopParity(t *testing.T) {
	_, _, _, gwt := buildGWT(t, 5, 1e-3)
	sawCrossing := false
	for i := 0; i < gwt.N; i++ {
		for j := i + 1; j < gwt.N; j++ {
			x := gwt.Obs(i, j) ^ gwt.Obs(i, i) ^ gwt.Obs(j, j)
			if x != 0 && x != 1 {
				t.Fatalf("non-binary loop parity %d", x)
			}
			if x == 1 {
				sawCrossing = true
			}
		}
	}
	if !sawCrossing {
		t.Fatal("no left-right crossing pair found; boundary sides look wrong")
	}
}

// GWT sizes reproduce Table 6's dominant entries: 192² = 36 KiB at d=7 and
// 400² ≈ 156 KiB at d=9.
func TestGWTSizeMatchesTable6(t *testing.T) {
	_, _, _, g7 := buildGWT(t, 7, 1e-3)
	if g7.SizeBytes() != 36864 {
		t.Fatalf("d=7 GWT = %d bytes, want 36864", g7.SizeBytes())
	}
	_, _, _, g9 := buildGWT(t, 9, 1e-3)
	if g9.SizeBytes() != 160000 {
		t.Fatalf("d=9 GWT = %d bytes, want 160000", g9.SizeBytes())
	}
}

// Time-like chains: the same stabilizer in consecutive rounds must be
// connected much more cheaply than distant stabilizers; and the weight of
// the time edge should be close to -log10(p_meas-merged), i.e. a few
// decades at p=1e-3.
func TestTimeEdgesCheap(t *testing.T) {
	code, _, _, gwt := buildGWT(t, 5, 1e-3)
	nz := code.NumZ
	// Detector index = round*nz + stab.
	for s := 0; s < nz; s++ {
		w := gwt.Weight(1*nz+s, 2*nz+s)
		if w > 4 {
			t.Fatalf("time edge for stab %d costs %v decades at p=1e-3", s, w)
		}
	}
}

// Weight histogram regenerates the Fig 10(a) shape: a multi-modal
// distribution with mass both below and above the W_th=7 cutoff at p=1e-3.
func TestWeightHistogramShape(t *testing.T) {
	_, _, _, gwt := buildGWT(t, 7, 1e-3)
	h := gwt.WeightHistogram(20)
	total := 0
	low, high := 0, 0
	for b, c := range h {
		total += c
		if b < 7 {
			low += c
		} else {
			high += c
		}
	}
	if total != gwt.N*(gwt.N+1)/2 {
		t.Fatalf("histogram total %d, want %d", total, gwt.N*(gwt.N+1)/2)
	}
	if low == 0 || high == 0 {
		t.Fatalf("expected mass on both sides of W_th: low=%d high=%d", low, high)
	}
	if float64(high) < 0.2*float64(total) {
		t.Fatalf("filtering should discard a substantial fraction; high=%d of %d", high, total)
	}
}

func TestFromModelRejectsMismatchedMetas(t *testing.T) {
	code, _ := surface.New(3)
	cc, _ := code.MemoryZ(3, 1e-3)
	m, err := dem.FromCircuit(cc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromModel(m, cc.DetMetas[:1]); err == nil {
		t.Fatal("expected meta length mismatch error")
	}
}

func TestDisconnectedGraphRejected(t *testing.T) {
	m := &dem.Model{
		NumDetectors: 3,
		Errors: []dem.Error{
			{Detectors: []int{0}, P: 0.1},
			{Detectors: []int{1, 2}, P: 0.1}, // 1,2 cannot reach boundary
		},
	}
	g, err := FromModel(m, make([]circuit.DetMeta, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.BuildGWT(); err == nil {
		t.Fatal("expected error for boundary-unreachable detectors")
	}
}

func BenchmarkBuildGWT(b *testing.B) {
	for _, d := range []int{3, 5, 7, 9} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			code, _ := surface.New(d)
			cc, _ := code.MemoryZ(d, 1e-3)
			m, err := dem.FromCircuit(cc)
			if err != nil {
				b.Fatal(err)
			}
			g, err := FromModel(m, cc.DetMetas)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.BuildGWT(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

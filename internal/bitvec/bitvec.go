// Package bitvec provides a compact, fixed-capacity bit vector used
// throughout the simulator for Pauli frames, measurement records, detector
// events, and syndromes. The representation is a little-endian slice of
// 64-bit words; bit i lives in word i/64 at position i%64.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vec is a bit vector with a fixed length established at creation time.
// The zero value is an empty vector of length 0.
type Vec struct {
	n     int
	words []uint64
}

// New returns a zeroed bit vector holding n bits.
func New(n int) Vec {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return Vec{n: n, words: make([]uint64, (n+63)/64)}
}

// FromIndices returns a length-n vector with the given bits set.
func FromIndices(n int, idx ...int) Vec {
	v := New(n)
	for _, i := range idx {
		v.Set(i)
	}
	return v
}

// Len reports the number of bits in the vector.
func (v Vec) Len() int { return v.n }

// Get reports whether bit i is set.
func (v Vec) Get(i int) bool {
	return v.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i to 1.
func (v Vec) Set(i int) {
	v.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear sets bit i to 0.
func (v Vec) Clear(i int) {
	v.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Flip toggles bit i.
func (v Vec) Flip(i int) {
	v.words[i>>6] ^= 1 << (uint(i) & 63)
}

// SetTo sets bit i to the given value.
func (v Vec) SetTo(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// Reset zeroes every bit.
func (v Vec) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// lengthMismatch keeps the panic's fmt call out of the hot methods: the
// format machinery boxes its operands and bloats the caller past the
// inlining budget even when the branch never runs.
func lengthMismatch(a, b int) {
	panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", a, b))
}

// XorWith xors other into v in place. The vectors must have equal length.
func (v Vec) XorWith(other Vec) {
	if v.n != other.n {
		lengthMismatch(v.n, other.n)
	}
	for i := range v.words {
		v.words[i] ^= other.words[i]
	}
}

// CopyFrom overwrites v with the contents of other. Lengths must match.
func (v Vec) CopyFrom(other Vec) {
	if v.n != other.n {
		lengthMismatch(v.n, other.n)
	}
	copy(v.words, other.words)
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	c := Vec{n: v.n, words: make([]uint64, len(v.words))}
	copy(c.words, v.words)
	return c
}

// PopCount returns the number of set bits (the Hamming weight).
func (v Vec) PopCount() int {
	total := 0
	for _, w := range v.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Any reports whether any bit is set.
func (v Vec) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether v and other hold identical bits.
func (v Vec) Equal(other Vec) bool {
	if v.n != other.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// Ones returns the indices of all set bits in ascending order, appended to
// dst (which may be nil). Iterating words and isolating the lowest set bit
// keeps this O(words + ones).
func (v Vec) Ones(dst []int) []int {
	for wi, w := range v.words {
		base := wi << 6
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			dst = append(dst, base+tz)
			w &= w - 1
		}
	}
	return dst
}

// String renders the vector as a 0/1 string, bit 0 first.
func (v Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Key returns a comparable string key for use as a map index (e.g. the
// LILLIPUT lookup table). It is the raw word contents, so it is compact and
// collision-free for vectors of the same length.
func (v Vec) Key() string {
	b := make([]byte, 8*len(v.words))
	for i, w := range v.words {
		for j := 0; j < 8; j++ {
			b[i*8+j] = byte(w >> (8 * uint(j)))
		}
	}
	return string(b)
}

// Uint64 interprets the first min(64, Len) bits as an unsigned integer.
// It panics if the vector is longer than 64 bits, to avoid silent truncation.
func (v Vec) Uint64() uint64 {
	if v.n > 64 {
		panic("bitvec: Uint64 on vector longer than 64 bits")
	}
	if len(v.words) == 0 {
		return 0
	}
	return v.words[0]
}

package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZeroed(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	if v.Any() {
		t.Fatal("new vector has set bits")
	}
	if v.PopCount() != 0 {
		t.Fatalf("PopCount = %d, want 0", v.PopCount())
	}
}

func TestSetGetClearFlip(t *testing.T) {
	v := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if v.Get(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Flip(i)
		if v.Get(i) {
			t.Fatalf("bit %d still set after Flip", i)
		}
		v.Flip(i)
		v.Clear(i)
		if v.Get(i) {
			t.Fatalf("bit %d set after Clear", i)
		}
	}
}

func TestSetTo(t *testing.T) {
	v := New(10)
	v.SetTo(3, true)
	if !v.Get(3) {
		t.Fatal("SetTo true failed")
	}
	v.SetTo(3, false)
	if v.Get(3) {
		t.Fatal("SetTo false failed")
	}
}

func TestXorWith(t *testing.T) {
	a := FromIndices(100, 1, 50, 99)
	b := FromIndices(100, 1, 2, 99)
	a.XorWith(b)
	want := FromIndices(100, 2, 50)
	if !a.Equal(want) {
		t.Fatalf("xor = %v, want %v", a, want)
	}
}

func TestXorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	New(10).XorWith(New(11))
}

func TestOnes(t *testing.T) {
	idx := []int{0, 3, 63, 64, 100, 191}
	v := FromIndices(192, idx...)
	got := v.Ones(nil)
	if len(got) != len(idx) {
		t.Fatalf("Ones len = %d, want %d", len(got), len(idx))
	}
	for i := range idx {
		if got[i] != idx[i] {
			t.Fatalf("Ones[%d] = %d, want %d", i, got[i], idx[i])
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := FromIndices(70, 5, 69)
	b := a.Clone()
	b.Flip(5)
	if !a.Get(5) {
		t.Fatal("mutating clone affected original")
	}
	if b.Get(5) {
		t.Fatal("clone flip failed")
	}
}

func TestCopyFrom(t *testing.T) {
	a := FromIndices(70, 1, 2, 3)
	b := New(70)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatal("CopyFrom did not copy")
	}
}

func TestResetClearsAll(t *testing.T) {
	v := FromIndices(128, 0, 64, 127)
	v.Reset()
	if v.Any() {
		t.Fatal("Reset left set bits")
	}
}

func TestStringRendering(t *testing.T) {
	v := FromIndices(5, 0, 4)
	if s := v.String(); s != "10001" {
		t.Fatalf("String = %q, want 10001", s)
	}
}

func TestKeyDistinguishesVectors(t *testing.T) {
	a := FromIndices(72, 3)
	b := FromIndices(72, 4)
	if a.Key() == b.Key() {
		t.Fatal("distinct vectors share a key")
	}
	c := FromIndices(72, 3)
	if a.Key() != c.Key() {
		t.Fatal("equal vectors have different keys")
	}
}

func TestUint64(t *testing.T) {
	v := FromIndices(16, 0, 3)
	if got := v.Uint64(); got != 9 {
		t.Fatalf("Uint64 = %d, want 9", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >64-bit vector")
		}
	}()
	_ = New(65).Uint64()
}

// Property: PopCount equals the number of indices reported by Ones, and
// xor of a vector with itself is zero.
func TestQuickPopCountOnesXorSelf(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		rng := rand.New(rand.NewSource(seed))
		v := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				v.Set(i)
			}
		}
		ones := v.Ones(nil)
		if len(ones) != v.PopCount() {
			return false
		}
		w := v.Clone()
		w.XorWith(v)
		return !w.Any()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: xor is commutative and associative on random vectors.
func TestQuickXorAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 1
		mk := func() Vec {
			v := New(n)
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 1 {
					v.Set(i)
				}
			}
			return v
		}
		a, b, c := mk(), mk(), mk()
		// (a^b)^c
		l := a.Clone()
		l.XorWith(b)
		l.XorWith(c)
		// a^(b^c)
		r := b.Clone()
		r.XorWith(c)
		r.XorWith(a)
		return l.Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkXorWith1024(b *testing.B) {
	v := New(1024)
	w := FromIndices(1024, 5, 500, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.XorWith(w)
	}
}

func BenchmarkOnesSparse(b *testing.B) {
	v := FromIndices(4096, 1, 700, 2100, 4000)
	buf := make([]int, 0, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = v.Ones(buf[:0])
	}
}

// Package sparsemwpm is the sparse exact minimum-weight perfect-matching
// engine: it matches flagged detectors directly on the sparse decoding
// graph (internal/decodegraph.Graph) instead of the dense all-pairs Global
// Weight Table, in the spirit of Sparse Blossom (Higgott & Gidney 2023) and
// Fusion Blossom (Wu et al.) — regions grown locally outward from each
// detection event, matched where they collide, with growth bounded by the
// matching structure rather than the lattice size.
//
// The engine is exact, and bit-for-bit interchangeable with the dense
// complete-graph blossom formulation in internal/mwpm: both minimise the
// lifted integer objective defined in internal/exactmatch and emit the
// canonical semantic matching. Each decode runs rounds of three phases
// under an iterative-deepening radius cap:
//
//  1. Region growth. For every flagged detector i, a truncated Dijkstra
//     grows a region over the sparse adjacency out to radius
//     min(bnd(i), R)+slack, where bnd(i) is i's boundary-chain weight and R
//     is the round's uniform cap (doubling per round). The boundary vertex
//     is never expanded, so region distances are exactly the GWT's
//     boundary-avoiding direct-chain weights. Each settled node records a
//     (region, dist) label; when a later region settles a node that
//     carries earlier labels — or reaches across a single edge to one —
//     the two regions have collided and the pair becomes a candidate with
//     an upper bound on its direct-chain weight. Any pair whose direct
//     chain fits within the sum of the two region radii admits a split
//     point where both halves fit inside their regions, so it collides and
//     its minimum collision bound equals its direct weight (up to float
//     association fuzz).
//
//  2. Exactification. Candidates within the discovered horizon get the
//     exact direct-chain weight as the dense table holds it: the
//     left-associated Dijkstra distance from the lower-indexed detector —
//     read off region i's label on j when present, otherwise from one
//     extended Dijkstra per lower region with radius just past the
//     candidate bound. Pairs whose lifted direct weight does not strictly
//     beat the lifted sum of their boundary chains are dropped — ties go
//     to the boundary, exactly as the dense engine's fold breaks them.
//
//  3. Local matching. With an unlimited-degree boundary, connected
//     components of the surviving structural-edge graph match
//     independently. Each component of size m is solved exactly on the
//     dense blossom solver over m vertices (plus one explicit boundary
//     vertex when m is odd) with through-boundary-folded weights — the
//     dense engine's own formulation restricted to the component (a
//     branch-and-bound enumeration replaces the blossom call for m ≤ 10).
//
// After each round the engine checks a pricing certificate read off the
// round's matching: per-detector dual values y price a boundary chain at
// its base weight and split a matched direct chain's base weight across its
// endpoints along the boundary potential, so every dual stays under its
// detector's boundary cap. The matching is provably the global lifted
// optimum when every surviving structural edge costs at least its dual sum
// and every undiscovered pair's dual sum stays below the sum of its region
// radii — which bound undiscovered direct chains from below by the
// collision-completeness argument above. Every chain of a rival matching
// then costs at least its dual sum, the duals sum to exactly the round's
// base total (they are tight on the matched chains), and a rival using an
// undiscovered chain lands strictly above the round's total in the lifted
// integer order; the checks run on fixed-point base weights with explicit
// margins so no rounding crosses the gap. Matched neighbours therefore
// certify at radii near half their chain weight and boundary-matched
// detectors once their region caps at the boundary radius — the same
// dual-bounded growth that keeps Sparse Blossom local. Plain per-vertex
// duals cannot price every structure (odd clusters of mutually close
// defects need blossom corrections); the checks run component-by-component,
// so a stubborn cluster only sends its own members to full growth — a
// fully-capped component needs no per-vertex prices at all, because its own
// solve already covered every rival routing inside it, and the radius caps
// price every chain that leaves it.
//
// Cost model, honestly stated: exactness forces a boundary-matched defect's
// region to cover its full boundary radius (its dual equals its
// boundary-chain weight, and any exact certificate must clear that dual
// against every undiscovered pair), so each odd cluster in the bulk pays a
// Dijkstra ball the size of its boundary distance — the very distances the
// dense engine reads precomputed out of the Global Weight Table. Against a
// warm all-pairs table at the distances this repo serves (d ≤ 13), the
// dense engine therefore wins most strata and the sparse engine's value is
// what it does NOT need: the O(N²) table itself. Matching runs on O(E)
// state, which is what unlocks memory-bounded scaling, streaming windows
// and artifact-less rotation at distances where the table is infeasible;
// BENCH_matching.json records the measured crossover both ways.
//
// An Engine is NOT safe for concurrent use (per-decode scratch is reused);
// create one per goroutine. The Graph it reads — including the CSR and
// boundary-chain views — is immutable and shared freely.
package sparsemwpm

import (
	"math"

	"astrea/internal/blossom"
	"astrea/internal/decodegraph"
	"astrea/internal/decoder"
	"astrea/internal/exactmatch"
)

// slack is the weight margin (in decades) added to every region radius. A
// direct chain can only matter to the lifted objective if its weight is
// below bnd(i)+bnd(j)+1.5/WeightScale (1.5 fixed-point rounding quanta ≈
// 2.3e-5 decades); slack is an order of magnitude wider, which also
// swallows the ~1e-12 float-association fuzz between a chain's split-sum
// collision bound and its left-associated true weight.
const slack = 1.0 / (1 << 12)

// Candidate resolution states.
const (
	candUnknown  = 0 // lifted direct weight not yet pinned down
	candResolved = 1 // exact quantises to the exact lifted direct weight
)

// label records that a region settled a node at a given distance.
type label struct {
	region int32
	dist   float64
}

// cand is a collision candidate: flagged positions a < b with an upper
// bound on their direct-chain weight, and the exact weight once resolved.
type cand struct {
	a, b  int32
	state int32
	bound float64
	exact float64
}

// sedge is a surviving structural edge between flagged positions a < b with
// its lifted direct-chain weight.
type sedge struct {
	a, b   int32
	lifted int64
}

// pqItem is a truncated-Dijkstra frontier entry.
type pqItem struct {
	node int32
	dist float64
}

// minHeap is a typed binary min-heap keyed on dist; the backing array is
// reused across runs so region growth performs no per-push allocations
// after warm-up (same idiom as decodegraph's BuildGWT heap).
type minHeap struct {
	items []pqItem
}

func (h *minHeap) reset() { h.items = h.items[:0] }

func (h *minHeap) push(it pqItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].dist <= h.items[i].dist {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *minHeap) pop() pqItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && h.items[r].dist < h.items[l].dist {
			m = r
		}
		if h.items[i].dist <= h.items[m].dist {
			break
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		i = m
	}
	return top
}

// Engine is the sparse exact matcher. It implements exactmatch.Engine; wrap
// it in a decoder with mwpm.NewWithEngine.
type Engine struct {
	g   *decodegraph.Graph
	csr *decodegraph.CSR
	// bndW and bndBase are the per-detector boundary-chain weights (float
	// and fixed-point), shared with / identical to the GWT diagonal.
	bndW    []float64
	bndBase []int64
	// r0 is the first round's radius cap: about one typical edge, so that
	// adjacent detection events — the overwhelmingly common case under
	// heavy noise — collide in the very first round.
	r0 float64

	// Per-node Dijkstra scratch, stamped by a monotone run counter so no
	// O(N) reset runs between regions or decodes.
	run     int64
	dist    []float64
	owner   []int64 // dist[u] is valid for the stamped run
	settled []int64 // u was settled (popped within radius) by the stamped run
	labels  [][]label
	touched []int32 // nodes holding labels, for post-decode truncation
	heap    minHeap

	// Per-decode scratch over flagged positions.
	liftBnd    []int64
	rho        []float64 // radius each region has grown to
	capped     []bool    // region reached its boundary radius; final
	regTouched [][]int32 // nodes labelled by each region, for regrowth
	y          []int64   // certificate: per-defect duals from the round's matching
	mate       []int32   // certificate: chain partner per defect, -1 for boundary
	chainX     []int64   // certificate: matched chain's base weight per defect
	need       []bool    // regions an uncertified round demands more growth from
	needFull   []bool    // regions whose component needs full growth, not doubling
	capQ       []int64   // certificate: per-defect price cap min(boundary, radius)
	ncomp      int       // components in the round's structural-edge graph
	cands      []cand
	candMat    []int32 // k×k candidate index matrix, -1 when absent
	pend       []int32 // candidate indices awaiting an extended run
	edges      []sedge
	parent     []int32
	compIdx    []int32
	pos        []int32
	members    [][]int32
	compEdge   [][]int32
	matw       []int64
	wms        []int32 // current component's members, read by foldedWeight
	wm         int     // current component's real-vertex count
	weightFn   func(int, int) int64
	sv         blossom.Solver
	enumW      [100]int64 // tiny-component weight matrix, n ≤ 10
	enumCur    [10]int8   // tiny enumeration: current pairing
	enumBest   [10]int8   // tiny enumeration: best pairing found
	enumTotal  int64
	tinyMate   [10]int
	out        [][2]int
}

// New returns a sparse matching engine over the graph's adjacency. The
// graph's CSR and boundary-chain views are built on first use and shared
// between engines; per-engine scratch is private.
func New(g *decodegraph.Graph) *Engine {
	csr := g.CSR()
	bndW, _ := g.BoundaryChains()
	e := &Engine{
		g:       g,
		csr:     csr,
		bndW:    bndW,
		bndBase: make([]int64, g.N),
		dist:    make([]float64, g.N),
		owner:   make([]int64, g.N),
		settled: make([]int64, g.N),
		labels:  make([][]label, g.N),
	}
	for i := 0; i < g.N; i++ {
		e.bndBase[i] = exactmatch.Base(bndW[i])
	}
	// Bind the folded-weight method value once: handing MinWeightPerfect a
	// fresh closure per component would heap-allocate on every shot.
	e.weightFn = e.foldedWeight

	sum := 0.0
	for _, w := range csr.W {
		sum += w
	}
	if n := len(csr.W); n > 0 {
		e.r0 = 1.5 * sum / float64(n)
	}
	if e.r0 <= 0 {
		e.r0 = 1
	}
	return e
}

// Name implements exactmatch.Engine.
func (e *Engine) Name() string { return "sparse" }

// addCand records (or tightens) a collision candidate between two regions.
// Regrown regions can collide with labels of higher-ordinal regions left by
// earlier rounds, so the pair is normalised here rather than at the call
// sites.
func (e *Engine) addCand(k int, a, b int32, bound float64) {
	if a > b {
		a, b = b, a
	}
	at := int(a)*k + int(b)
	if idx := e.candMat[at]; idx >= 0 {
		if bound < e.cands[idx].bound {
			e.cands[idx].bound = bound
		}
		return
	}
	e.candMat[at] = int32(len(e.cands))
	e.cands = append(e.cands, cand{a: a, b: b, state: candUnknown, bound: bound})
}

// growRegion runs a truncated Dijkstra from src out to radius, stamped with
// a fresh run ID. Growth calls pass the region ordinal and collide=true:
// settled nodes record labels, and labels of other regions found on the
// settled node or across one of its edges become collision candidates.
// Exactification calls pass collide=false and read settled distances back
// through the stamps immediately after the call.
func (e *Engine) growRegion(k int, region int32, src int32, radius float64, collide bool) int64 {
	e.run++
	runID := e.run
	bnd := int32(e.csr.N)
	e.heap.reset()
	e.dist[src] = 0
	e.owner[src] = runID
	e.heap.push(pqItem{node: src})
	for len(e.heap.items) > 0 {
		it := e.heap.pop()
		u := it.node
		if it.dist > e.dist[u] {
			continue // stale entry
		}
		if it.dist > radius {
			break // monotone pop order: everything left is out of range
		}
		e.settled[u] = runID
		if collide {
			if len(e.labels[u]) == 0 {
				e.touched = append(e.touched, u)
			}
			for _, l := range e.labels[u] {
				e.addCand(k, l.region, region, l.dist+it.dist)
			}
			e.labels[u] = append(e.labels[u], label{region: region, dist: it.dist})
			e.regTouched[region] = append(e.regTouched[region], u)
		}
		for idx := e.csr.RowStart[u]; idx < e.csr.RowStart[u+1]; idx++ {
			v := e.csr.To[idx]
			if v == bnd {
				continue // direct chains never hop through the boundary
			}
			w := e.csr.W[idx]
			nd := it.dist + w
			if nd > radius {
				// The far end stays unsettled, so the node-settle scan there
				// will never see this region: record collisions across the
				// pruned edge now. (For ends this run settles, the settle
				// scan subsumes the edge bound: dist(v) ≤ dist(u)+w.)
				if collide {
					for _, l := range e.labels[v] {
						if l.region != region {
							e.addCand(k, l.region, region, nd+l.dist)
						}
					}
				}
				continue // never settled; don't let it bloat the heap
			}
			if e.owner[v] != runID {
				e.owner[v] = runID
				e.dist[v] = nd
				e.heap.push(pqItem{node: v, dist: nd})
			} else if nd < e.dist[v] {
				e.dist[v] = nd
				e.heap.push(pqItem{node: v, dist: nd})
			}
		}
	}
	return runID
}

// resumeRegion continues a region's truncated Dijkstra from oldRadius out
// to newRadius without re-popping the settled interior. The old run pruned
// exactly the relaxations beyond its radius, so re-scanning the settled
// ball's edges for targets in (oldRadius, newRadius] reseeds the frontier
// with the identical values a from-scratch run would reach them with, and
// the pop loop then explores only the annulus. Interior collisions need no
// replay: any label another region left inside this ball was recorded as a
// candidate when that region settled here.
func (e *Engine) resumeRegion(k int, region int32, oldRadius, newRadius float64) {
	e.run++
	runID := e.run
	bnd := int32(e.csr.N)
	e.heap.reset()
	for _, u := range e.regTouched[region] {
		d, _ := e.settledDist(region, u)
		for idx := e.csr.RowStart[u]; idx < e.csr.RowStart[u+1]; idx++ {
			v := e.csr.To[idx]
			if v == bnd {
				continue
			}
			nd := d + e.csr.W[idx]
			if nd <= oldRadius || nd > newRadius {
				continue
			}
			if e.owner[v] != runID {
				e.owner[v] = runID
				e.dist[v] = nd
				e.heap.push(pqItem{node: v, dist: nd})
			} else if nd < e.dist[v] {
				e.dist[v] = nd
				e.heap.push(pqItem{node: v, dist: nd})
			}
		}
	}
	for len(e.heap.items) > 0 {
		it := e.heap.pop()
		u := it.node
		if it.dist > e.dist[u] || e.owner[u] != runID {
			continue // stale entry
		}
		if _, settled := e.settledDist(region, u); settled {
			continue // interior: settled by an earlier round of this region
		}
		e.settled[u] = runID
		if len(e.labels[u]) == 0 {
			e.touched = append(e.touched, u)
		}
		for _, l := range e.labels[u] {
			e.addCand(k, l.region, region, l.dist+it.dist)
		}
		e.labels[u] = append(e.labels[u], label{region: region, dist: it.dist})
		e.regTouched[region] = append(e.regTouched[region], u)
		for idx := e.csr.RowStart[u]; idx < e.csr.RowStart[u+1]; idx++ {
			v := e.csr.To[idx]
			if v == bnd {
				continue
			}
			w := e.csr.W[idx]
			nd := it.dist + w
			if nd > newRadius {
				for _, l := range e.labels[v] {
					if l.region != region {
						e.addCand(k, l.region, region, nd+l.dist)
					}
				}
				continue // never settled; don't let it bloat the heap
			}
			if e.owner[v] != runID {
				e.owner[v] = runID
				e.dist[v] = nd
				e.heap.push(pqItem{node: v, dist: nd})
			} else if nd < e.dist[v] {
				e.dist[v] = nd
				e.heap.push(pqItem{node: v, dist: nd})
			}
		}
	}
}

// settledDist looks up the growth-phase distance from region a to node u,
// if region a settled u.
func (e *Engine) settledDist(a int32, u int32) (float64, bool) {
	for _, l := range e.labels[u] {
		if l.region == a {
			return l.dist, true
		}
	}
	return 0, false
}

// keepEdge lifts an exact direct-chain weight and retains the edge iff it
// strictly beats matching both endpoints to the boundary — the same
// tie-goes-to-the-boundary rule the dense engine's fold applies.
func (e *Engine) keepEdge(flagged []int, a, b int32, d float64, k int) {
	i, j := flagged[a], flagged[b]
	direct := exactmatch.Lift(exactmatch.Base(d), exactmatch.PairTie(i, j, k))
	if direct < e.liftBnd[a]+e.liftBnd[b] {
		e.edges = append(e.edges, sedge{a: a, b: b, lifted: direct})
	}
}

// dualSplit splits a matched direct chain's base weight x into endpoint
// duals ya+yb = x with ya ≤ ba and yb ≤ bb (the endpoints' boundary-chain
// base weights), choosing the boundary-potential split (x+ba−bb)/2 that
// keeps both duals as far under their boundary caps as the chain allows.
// The window is never empty: a chain only survives folding when x ≤ ba+bb.
func dualSplit(x, ba, bb int64) (ya, yb int64) {
	ya = (x + ba - bb) / 2
	if lo := x - bb; ya < lo {
		ya = lo
	}
	if ya < 0 {
		ya = 0
	}
	if ya > ba {
		ya = ba
	}
	if ya > x {
		ya = x
	}
	return ya, x - ya
}

// bbase is the base (un-lifted) boundary-chain weight of flagged position a.
func (e *Engine) bbase(a int32) int64 { return e.liftBnd[a] >> exactmatch.TieBits }

// find is iterative union-find over flagged positions with path halving.
func (e *Engine) find(x int32) int32 {
	for e.parent[x] != x {
		e.parent[x] = e.parent[e.parent[x]]
		x = e.parent[x]
	}
	return x
}

// horizon reports whether a candidate bound proves the pair was discovered:
// any pair whose direct chain fits within the sum of the two region radii
// has a split-point collision whose bound equals the direct weight, so a
// minimum bound beyond the radius sum (plus float fuzz) proves the direct
// chain exceeds it.
func withinHorizon(bound, rhoSum float64) bool {
	return bound <= rhoSum+rhoSum*1e-9+1e-12
}

// pendLess orders pending candidate indices by (lower region, partner) so
// resolve batches all candidates sharing a source region into one extended
// Dijkstra run.
func (e *Engine) pendLess(x, y int32) bool {
	cx, cy := &e.cands[x], &e.cands[y]
	if cx.a != cy.a {
		return cx.a < cy.a
	}
	return cx.b < cy.b
}

// resolve exactifies every candidate inside the discovery horizon: the
// left-associated Dijkstra distance from the lower-indexed detector, read
// off its region's label when the partner was settled, otherwise via one
// extended run per lower region with radius just past the candidate bound.
func (e *Engine) resolve(flagged []int) {
	e.pend = e.pend[:0]
	for ci := range e.cands {
		c := &e.cands[ci]
		if c.state != candUnknown || !withinHorizon(c.bound, e.rho[c.a]+e.rho[c.b]) {
			continue
		}
		// An in-horizon bound is the direct weight up to float association
		// error (the same edge weights summed in a different order, well
		// under 1e-12 relative): when the bound's whole error interval
		// quantises to one fixed-point base, the lifted weight — the only
		// thing the matching consumes; the adapter rescores pairs through
		// the GWT — is already exact and no extended run is needed. Only a
		// bound straddling a quantisation boundary (odds ~1e-6) falls
		// through to the exact left-associated Dijkstra.
		eps := c.bound*1e-12 + 1e-15
		if exactmatch.Base(c.bound-eps) == exactmatch.Base(c.bound+eps) {
			c.exact = c.bound
			c.state = candResolved
			continue
		}
		if d, ok := e.settledDist(c.a, int32(flagged[c.b])); ok {
			c.exact = d
			c.state = candResolved
			continue
		}
		e.pend = append(e.pend, int32(ci))
	}
	// Insertion sort instead of sort.Slice: only candidates whose error
	// interval straddles a quantisation base survive to pend (odds ~1e-6
	// each), so the slice is almost always empty or a handful — and
	// sort.Slice's closure-through-interface would put two heap
	// allocations on the per-shot path.
	for i := 1; i < len(e.pend); i++ {
		for j := i; j > 0 && e.pendLess(e.pend[j], e.pend[j-1]); j-- {
			e.pend[j], e.pend[j-1] = e.pend[j-1], e.pend[j]
		}
	}
	for lo := 0; lo < len(e.pend); {
		a := e.cands[e.pend[lo]].a
		hi := lo
		radius := 0.0
		for hi < len(e.pend) && e.cands[e.pend[hi]].a == a {
			if b := e.cands[e.pend[hi]].bound; b > radius {
				radius = b
			}
			hi++
		}
		src := int32(flagged[a])
		runID := e.growRegion(len(flagged), -1, src, radius+radius*1e-9+1e-12, false)
		for ; lo < hi; lo++ {
			c := &e.cands[e.pend[lo]]
			j := int32(flagged[c.b])
			if e.settled[j] != runID {
				// The direct chain is no longer than the collision bound, so
				// a run out to just past the bound always settles the
				// partner; failing to is a programming bug.
				panic("sparsemwpm: extended run failed to settle a candidate partner")
			}
			c.exact = e.dist[j]
			c.state = candResolved
		}
	}
}

// enumRec enumerates the perfect matchings of the complete graph on n ≤ 10
// vertices (weights in e.enumW), branch-and-bound style: the lowest
// unmatched vertex pairs with each remaining vertex in turn. At most 945
// matchings for n = 10 and branch-and-bound prunes most, so small
// components skip the blossom solver's quadratic reset entirely.
func (e *Engine) enumRec(n int, mask uint32, total int64) {
	if total >= e.enumTotal {
		return
	}
	x := 0
	for x < n && mask&(1<<uint(x)) != 0 {
		x++
	}
	if x == n {
		e.enumTotal = total
		copy(e.enumBest[:n], e.enumCur[:n])
		return
	}
	mask |= 1 << uint(x)
	for y := x + 1; y < n; y++ {
		if mask&(1<<uint(y)) != 0 {
			continue
		}
		e.enumCur[x], e.enumCur[y] = int8(y), int8(x)
		e.enumRec(n, mask|1<<uint(y), total+e.enumW[x*n+y])
	}
}

// solveTiny is the n ≤ 10 replacement for the blossom call in solve: same
// folded component formulation, same mate-array contract.
// foldedWeight is the per-component pair weight solve hands the dense
// solver: the structural edge when one survived (strictly below the
// boundary sum by construction) and the through-boundary fold otherwise,
// with index e.wm the explicit boundary vertex. The component's state
// rides in e.wms/e.wm/e.matw so the method value bound once in New
// (e.weightFn) carries no per-call closure allocation.
func (e *Engine) foldedWeight(x, y int) int64 {
	if x > y {
		x, y = y, x
	}
	m := e.wm
	if y < m {
		if w := e.matw[x*m+y]; w >= 0 {
			return w
		}
		return e.liftBnd[e.wms[x]] + e.liftBnd[e.wms[y]]
	}
	return e.liftBnd[e.wms[x]] // the explicit boundary vertex
}

func (e *Engine) solveTiny(n, m int, ms []int32) []int {
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			var w int64
			switch {
			case y < m:
				if w = e.matw[x*m+y]; w < 0 {
					w = e.liftBnd[ms[x]] + e.liftBnd[ms[y]]
				}
			default:
				w = e.liftBnd[ms[x]] // the explicit boundary vertex
			}
			e.enumW[x*n+y] = w
		}
	}
	e.enumTotal = math.MaxInt64
	e.enumRec(n, 0, 0)
	for x := 0; x < n; x++ {
		e.tinyMate[x] = int(e.enumBest[x])
	}
	return e.tinyMate[:n]
}

// solve matches each connected component of the structural-edge graph
// independently (the unlimited-degree boundary decouples them), writing the
// semantic matching into e.out and the matching's tight duals into e.y: a
// boundary chain prices its detector at the chain's base weight, a direct
// chain splits its base weight across its endpoints, so Σy equals the
// matching's base total exactly.
func (e *Engine) solve(flagged []int) {
	k := len(flagged)
	e.y = e.y[:0]
	e.mate = e.mate[:0]
	e.chainX = e.chainX[:0]
	for a := 0; a < k; a++ {
		e.y = append(e.y, 0)
		e.mate = append(e.mate, -1)
		e.chainX = append(e.chainX, 0)
	}
	e.parent = e.parent[:0]
	for a := 0; a < k; a++ {
		e.parent = append(e.parent, int32(a))
	}
	for _, ed := range e.edges {
		ra, rb := e.find(ed.a), e.find(ed.b)
		if ra != rb {
			e.parent[rb] = ra
		}
	}
	e.compIdx = e.compIdx[:0]
	for a := 0; a < k; a++ {
		e.compIdx = append(e.compIdx, -1)
	}
	ncomp := 0
	for a := int32(0); a < int32(k); a++ {
		r := e.find(a)
		ci := e.compIdx[r]
		if ci < 0 {
			ci = int32(ncomp)
			ncomp++ // e.ncomp is set once the sweep finishes
			e.compIdx[r] = ci
			// Reuse the nested backing arrays across decodes.
			if int(ci) == len(e.members) {
				e.members = append(e.members, nil)
				e.compEdge = append(e.compEdge, nil)
			} else {
				e.members[ci] = e.members[ci][:0]
				e.compEdge[ci] = e.compEdge[ci][:0]
			}
		}
		e.members[ci] = append(e.members[ci], a)
	}
	for ei, ed := range e.edges {
		ci := e.compIdx[e.find(ed.a)]
		e.compEdge[ci] = append(e.compEdge[ci], int32(ei))
	}
	e.ncomp = ncomp

	e.out = e.out[:0]
	if e.pos == nil || len(e.pos) < k {
		e.pos = make([]int32, k)
	}
	for ci, ms := range e.members[:ncomp] {
		m := len(ms)
		switch m {
		case 1:
			e.y[ms[0]] = e.bbase(ms[0])
			e.out = append(e.out, [2]int{flagged[ms[0]], decoder.Boundary})
			continue
		case 2:
			// A two-detector component exists only because its edge
			// survived, and a surviving edge strictly beats the two
			// boundary chains.
			ed := e.edges[e.compEdge[ci][0]]
			x := ed.lifted >> exactmatch.TieBits
			e.y[ed.a], e.y[ed.b] = dualSplit(x, e.bbase(ed.a), e.bbase(ed.b))
			e.mate[ed.a], e.mate[ed.b] = ed.b, ed.a
			e.chainX[ed.a], e.chainX[ed.b] = x, x
			e.out = append(e.out, [2]int{flagged[ms[0]], flagged[ms[1]]})
			continue
		}
		// The dense engine's own folded formulation, restricted to the
		// component: real vertices 0..m-1 with pair weight = the structural
		// edge when one survived (strictly below the boundary sum by
		// construction) and the through-boundary fold otherwise, plus one
		// explicit boundary vertex when m is odd.
		for p, a := range ms {
			e.pos[a] = int32(p)
		}
		need := m * m
		if cap(e.matw) < need {
			e.matw = make([]int64, need)
		}
		e.matw = e.matw[:need]
		for x := range e.matw {
			e.matw[x] = -1
		}
		for _, ei := range e.compEdge[ci] {
			ed := e.edges[ei]
			pa, pb := e.pos[ed.a], e.pos[ed.b]
			e.matw[int(pa)*m+int(pb)] = ed.lifted
			e.matw[int(pb)*m+int(pa)] = ed.lifted
		}
		n := m
		if m%2 == 1 {
			n++
		}
		e.wms, e.wm = ms, m
		var mate []int
		if n <= 10 {
			mate = e.solveTiny(n, m, ms)
		} else {
			var err error
			mate, _, err = e.sv.MinWeightPerfect(n, e.weightFn)
			if err != nil {
				// The folded component graph is complete, so a perfect matching
				// always exists; an error here is a programming bug, not a data
				// condition.
				panic(err)
			}
		}
		for p := 0; p < m; p++ {
			q := mate[p]
			if q >= m {
				e.y[ms[p]] = e.bbase(ms[p])
				e.out = append(e.out, [2]int{flagged[ms[p]], decoder.Boundary})
				continue
			}
			if q < p {
				continue // already emitted
			}
			if w := e.matw[p*m+q]; w >= 0 {
				x := w >> exactmatch.TieBits
				e.y[ms[p]], e.y[ms[q]] = dualSplit(x, e.bbase(ms[p]), e.bbase(ms[q]))
				e.mate[ms[p]], e.mate[ms[q]] = ms[q], ms[p]
				e.chainX[ms[p]], e.chainX[ms[q]] = x, x
				e.out = append(e.out, [2]int{flagged[ms[p]], flagged[ms[q]]})
			} else {
				// The optimum folded this pair through the boundary: report
				// the two boundary chains it actually consists of.
				e.y[ms[p]], e.y[ms[q]] = e.bbase(ms[p]), e.bbase(ms[q])
				e.out = append(e.out,
					[2]int{flagged[ms[p]], decoder.Boundary},
					[2]int{flagged[ms[q]], decoder.Boundary})
			}
		}
	}
}

// yLo is the lowest dual value defect a's chain allows: a boundary (or
// folded) chain fixes the dual at the chain's base weight outright, while a
// direct chain lets the split shift as long as the partner's share stays
// under the partner's price cap.
func (e *Engine) yLo(a int32) int64 {
	p := e.mate[a]
	if p < 0 {
		return e.y[a]
	}
	if lo := e.chainX[a] - e.capQ[p]; lo > 0 {
		return lo
	}
	return 0
}

// repairComp makes one component's chain splits feasible against its own
// surviving structural edges, where possible. The initial boundary-potential
// splits are chosen chain-by-chain, so an unmatched edge between two matched
// chains can price below its endpoints' dual sum even though feasible splits
// exist (an alternating path needs its splits coordinated). Each pass shifts
// violated edges' endpoint duals down within their chains' cap windows — the
// chain sums stay tight, so Σy still equals the matching's base total —
// until no edge is violated or no shift is available. Structures that need
// blossom corrections (odd clusters of mutually close defects) have no
// feasible per-vertex prices at all; the loop stops moving and reports
// false. Feasibility only ever involves a component's own members: surviving
// edges define the components and chain shifts move along mates, so no
// repair can disturb another component's prices.
func (e *Engine) repairComp(ci int) bool {
	for pass := 0; pass < 6; pass++ {
		violated, moved := false, false
		for _, ei := range e.compEdge[ci] {
			ed := e.edges[ei]
			over := e.y[ed.a] + e.y[ed.b] - ed.lifted>>exactmatch.TieBits
			if over <= 0 {
				continue
			}
			violated = true
			for _, t := range [2]int32{ed.a, ed.b} {
				p := e.mate[t]
				if p < 0 {
					continue // boundary-pinned dual cannot move
				}
				du := e.y[t] - e.yLo(t)
				if room := e.capQ[p] - e.y[p]; du > room {
					du = room
				}
				if du > over {
					du = over
				}
				if du <= 0 {
					continue
				}
				e.y[t] -= du
				e.y[p] += du // chain sum stays tight
				over -= du
				moved = true
				if over <= 0 {
					break
				}
			}
		}
		if !violated {
			return true
		}
		if !moved {
			return false
		}
	}
	return false
}

// certify reports whether the round's matching is provably the global
// lifted optimum given the regions grown so far. It prices every flagged
// detector with a dual value and checks, component by component, that the
// prices are feasible: a rival matching's every chain then costs at least
// its endpoints' price sum, and the prices are tight — Σy is exactly the
// round's base total — so a rival using an undiscovered chain exceeds the
// total by whole fixed-point quanta, which outranks any tie-break sum in
// the lifted order. Rivals built only from discovered chains were already
// inside the component solves' search space.
//
// Every price is capped at min(B_a, R_a−8): B_a the boundary-chain base (a
// boundary chain then costs at least the price it covers) and R_a the
// region radius in base units (collision completeness puts an undiscovered
// pair's direct chain strictly beyond ρ_a+ρ_b, so the cap makes every
// undiscovered chain clear its price sum without any pairwise check; the −8
// absorbs the float rounding of the radii). Surviving structural edges are
// the one chain family the caps don't bound, and they live strictly inside
// components — certifyComp prices them per component.
//
// Components that fail mark the regions whose growth can fix them in
// e.need (and e.needFull when only full growth can); certified components
// are left alone, so one stubborn cluster no longer forces the whole
// syndrome to full growth.
func (e *Engine) certify(k int) bool {
	for a := 0; a < k; a++ {
		e.need[a] = false
		cq := e.bbase(int32(a))
		if !e.capped[a] {
			if r := int64(e.rho[a]*exactmatch.WeightScale) - 8; r < cq {
				cq = r
			}
			if cq < 0 {
				cq = 0
			}
		}
		e.capQ[a] = cq
	}
	ok := true
	for ci := 0; ci < e.ncomp; ci++ {
		if !e.certifyComp(ci) {
			ok = false
		}
	}
	return ok
}

// certifyComp prices one component of the round's matching:
//
//   - A boundary (or folded) chain prices its detector at the chain's base
//     weight outright — tightness leaves no slack to give away — so its
//     region must have grown to its boundary radius for the price to fit
//     under the radius cap. If not, the region is marked for growth.
//
//   - A direct chain splits its base weight across its endpoints inside
//     their cap windows; repairComp then coordinates the splits against the
//     component's surviving edges. An empty window means some endpoint's
//     radius is still below its share of the chain — growth fixes it.
//
//   - When repair fails on a fully-capped component, the component is
//     accepted as certified anyway ("dirty"): odd clusters of mutually
//     close defects need blossom corrections that per-vertex prices cannot
//     express, but with every member capped the component's own solve
//     already covered every way a rival could route chains inside it — a
//     rival's kept edges plus boundary chains for the remaining members is
//     a matching the component blossom considered, so it costs at least the
//     component total, and every chain leaving the component is priced by
//     the caps. When repair fails with uncapped members, no radius makes
//     per-vertex prices feasible either, so those members are sent straight
//     to full growth (e.needFull) rather than through pointless doublings.
func (e *Engine) certifyComp(ci int) bool {
	ms := e.members[ci]
	feasible, cappedAll := true, true
	for _, a := range ms {
		if !e.capped[a] {
			cappedAll = false
		}
		p := e.mate[a]
		if p < 0 {
			e.y[a] = e.bbase(a)
			if !e.capped[a] {
				feasible = false
			}
			continue
		}
		if p < a {
			continue // the chain was split when its lower endpoint was visited
		}
		x := e.chainX[a]
		if x > e.capQ[a]+e.capQ[p] {
			feasible = false
			continue
		}
		e.y[a], e.y[p] = dualSplit(x, e.capQ[a], e.capQ[p])
	}
	if feasible {
		if e.repairComp(ci) {
			return true
		}
		if cappedAll {
			return true // dirty: certified through the component solve itself
		}
		for _, a := range ms {
			if !e.capped[a] {
				e.need[a] = true
				e.needFull[a] = true
			}
		}
		return false
	}
	for _, a := range ms {
		if !e.capped[a] {
			e.need[a] = true
		}
	}
	return false
}

// Match implements exactmatch.Engine.
func (e *Engine) Match(flagged []int) [][2]int {
	k := len(flagged)

	// Per-flagged state: lifted boundary chains, region radii, candidates.
	e.liftBnd = e.liftBnd[:0]
	e.rho = e.rho[:0]
	e.capped = e.capped[:0]
	e.need = e.need[:0]
	e.needFull = e.needFull[:0]
	e.capQ = e.capQ[:0]
	for _, i := range flagged {
		e.liftBnd = append(e.liftBnd, exactmatch.Lift(e.bndBase[i], exactmatch.BoundaryTie(i, k)))
		e.rho = append(e.rho, 0)
		e.capped = append(e.capped, false)
		e.need = append(e.need, false)
		e.needFull = append(e.needFull, false)
		e.capQ = append(e.capQ, 0)
	}
	for len(e.regTouched) < k {
		e.regTouched = append(e.regTouched, nil)
	}
	if cap(e.candMat) < k*k {
		e.candMat = make([]int32, k*k)
	}
	e.candMat = e.candMat[:k*k]
	for x := range e.candMat {
		e.candMat[x] = -1
	}
	e.cands = e.cands[:0]

	// Defect-dense syndromes saturate the graph with overlapping regions;
	// iterative deepening would only add a wasted partial round on top of
	// the full growth they end up needing, so they go there directly.
	full := 12*k >= e.csr.N

	for round := 0; ; round++ {
		allCapped := true
		for a := 0; a < k; a++ {
			if e.capped[a] {
				continue
			}
			if round > 0 && !full && !e.need[a] {
				allCapped = false
				continue // this region's duals are already feasible
			}
			src := int32(flagged[a])
			target := math.Inf(1)
			if !full && !e.needFull[a] {
				if round == 0 {
					target = e.r0
				} else {
					target = 2 * e.rho[a]
				}
			}
			atBnd := false
			if b := e.bndW[src]; b <= target {
				target = b
				atBnd = true
			}
			target += slack
			if !atBnd {
				allCapped = false
			}
			e.capped[a] = atBnd
			if e.rho[a] > 0 {
				if target <= e.rho[a] {
					continue // a previous round already grew this far
				}
				e.resumeRegion(k, int32(a), e.rho[a], target)
			} else {
				e.growRegion(k, int32(a), src, target, true)
			}
			e.rho[a] = target
		}

		e.resolve(flagged)
		e.edges = e.edges[:0]
		for ci := range e.cands {
			if c := &e.cands[ci]; c.state == candResolved {
				e.keepEdge(flagged, c.a, c.b, c.exact, k)
			}
		}
		e.solve(flagged)
		if allCapped {
			// Full growth: every pair is resolved or boundary-dominated, so
			// the solve's search space covered the optimum outright.
			break
		}
		if e.certify(k) {
			break
		}
	}

	// Release per-decode label and candidate state (stamps make the
	// Dijkstra arrays self-resetting).
	for _, u := range e.touched {
		e.labels[u] = e.labels[u][:0]
	}
	e.touched = e.touched[:0]
	for a := 0; a < k; a++ {
		e.regTouched[a] = e.regTouched[a][:0]
	}

	return e.out
}

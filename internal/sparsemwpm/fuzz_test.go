package sparsemwpm

import (
	"math"
	"sync"
	"testing"

	"astrea/internal/bitvec"
	"astrea/internal/decodegraph"
	"astrea/internal/mwpm"
)

// fuzzEnv is one cached (distance, p) environment with both engines built;
// the corpus byte picks among a small grid so one fuzz run crosses lattice
// sizes and weight profiles without rebuilding tables per input.
type fuzzEnv struct {
	gwt    *decodegraph.GWT
	dense  *mwpm.Decoder
	sparse *mwpm.Decoder
}

var (
	fuzzEnvOnce sync.Once
	fuzzEnvs    []*fuzzEnv
)

func fuzzEnvFor(tb testing.TB, sel byte) *fuzzEnv {
	fuzzEnvOnce.Do(func() {
		for _, tc := range []struct {
			d int
			p float64
		}{
			{3, 1e-3}, {5, 3e-3}, {7, 1e-2},
		} {
			_, g, gwt := build(tb, tc.d, tc.p)
			fuzzEnvs = append(fuzzEnvs, &fuzzEnv{
				gwt:    gwt,
				dense:  mwpm.New(gwt),
				sparse: newSparse(g, gwt),
			})
		}
	})
	return fuzzEnvs[int(sel)%len(fuzzEnvs)]
}

// FuzzSparseVsDense is the differential fuzzer behind the engines'
// interchangeability guarantee: arbitrary bytes become an arbitrary flagged
// detector set (not just sampler-consistent syndromes — the matcher's
// contract is any subset), and the sparse engine must reproduce the dense
// blossom engine bit-for-bit: identical observable prediction, bit-equal
// float weight, identical pair list.
func FuzzSparseVsDense(f *testing.F) {
	f.Add(byte(0), []byte{})
	f.Add(byte(0), []byte{0x01})
	f.Add(byte(1), []byte{0xff, 0x00, 0xff})
	f.Add(byte(2), []byte{0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55})
	f.Add(byte(2), []byte{0x80, 0x00, 0x00, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, sel byte, bits []byte) {
		env := fuzzEnvFor(t, sel)
		s := bitvec.New(env.gwt.N)
		k := 0
		for i := 0; i < env.gwt.N && i/8 < len(bits); i++ {
			if bits[i/8]&(1<<uint(i%8)) != 0 {
				s.Set(i)
				k++
			}
		}
		a, b := env.dense.Decode(s), env.sparse.Decode(s)
		if a.ObsPrediction != b.ObsPrediction {
			t.Fatalf("k=%d: obs %x (dense) vs %x (sparse)", k, a.ObsPrediction, b.ObsPrediction)
		}
		if math.Float64bits(a.Weight) != math.Float64bits(b.Weight) {
			t.Fatalf("k=%d: weight %v (dense) vs %v (sparse)", k, a.Weight, b.Weight)
		}
		if len(a.Pairs) != len(b.Pairs) {
			t.Fatalf("k=%d: %d pairs (dense) vs %d (sparse)", k, len(a.Pairs), len(b.Pairs))
		}
		for i := range a.Pairs {
			if a.Pairs[i] != b.Pairs[i] {
				t.Fatalf("k=%d pair %d: %v (dense) vs %v (sparse)", k, i, a.Pairs[i], b.Pairs[i])
			}
		}
	})
}

package sparsemwpm

import (
	"math"
	"sync"
	"testing"

	"astrea/internal/bitvec"
	"astrea/internal/decodegraph"
	"astrea/internal/decoder"
	"astrea/internal/dem"
	"astrea/internal/mwpm"
	"astrea/internal/prng"
	"astrea/internal/surface"
)

func build(t testing.TB, d int, p float64) (*dem.Model, *decodegraph.Graph, *decodegraph.GWT) {
	t.Helper()
	code, err := surface.New(d)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := code.MemoryZ(d, p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dem.FromCircuit(cc)
	if err != nil {
		t.Fatal(err)
	}
	g, err := decodegraph.FromModel(m, cc.DetMetas)
	if err != nil {
		t.Fatal(err)
	}
	gwt, err := g.BuildGWT()
	if err != nil {
		t.Fatal(err)
	}
	return m, g, gwt
}

func newSparse(g *decodegraph.Graph, gwt *decodegraph.GWT) *mwpm.Decoder {
	return mwpm.NewWithEngine(gwt, New(g))
}

// sameResult compares two decode results for bit-identity: equal observable
// prediction, bit-equal float weight and equal pair lists.
func sameResult(a, b decoder.Result) bool {
	if a.ObsPrediction != b.ObsPrediction ||
		math.Float64bits(a.Weight) != math.Float64bits(b.Weight) ||
		len(a.Pairs) != len(b.Pairs) {
		return false
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			return false
		}
	}
	return true
}

func TestEmptySyndrome(t *testing.T) {
	_, g, gwt := build(t, 3, 1e-3)
	d := newSparse(g, gwt)
	r := d.Decode(bitvec.New(gwt.N))
	if r.ObsPrediction != 0 || len(r.Pairs) != 0 || r.Weight != 0 {
		t.Fatalf("empty syndrome decoded to %+v", r)
	}
}

func TestSingleFlagged(t *testing.T) {
	_, g, gwt := build(t, 3, 1e-3)
	d := newSparse(g, gwt)
	s := bitvec.New(gwt.N)
	s.Set(3)
	r := d.Decode(s)
	if len(r.Pairs) != 1 || r.Pairs[0] != [2]int{3, decoder.Boundary} {
		t.Fatalf("pairs = %v", r.Pairs)
	}
	if r.ObsPrediction != gwt.Obs(3, 3) {
		t.Fatal("prediction must follow the boundary chain parity")
	}
}

// Odd flagged counts exercise the implicit-boundary path: with the
// unlimited-degree boundary at least one detector must take its boundary
// chain, and the matching must still cover every flagged detector exactly
// once.
func TestOddFlaggedCounts(t *testing.T) {
	m, g, gwt := build(t, 5, 3e-3)
	d := newSparse(g, gwt)
	rng := prng.New(515)
	smp := dem.NewSampler(m)
	s := bitvec.New(gwt.N)
	odd := 0
	for shot := 0; shot < 4000 && odd < 200; shot++ {
		smp.Sample(rng, s)
		ones := s.Ones(nil)
		if len(ones)%2 == 0 || len(ones) < 3 {
			continue
		}
		odd++
		r := d.Decode(s)
		if ok, why := decoder.Validate(s, r); !ok {
			t.Fatalf("shot %d (k=%d): invalid matching: %s", shot, len(ones), why)
		}
		boundaryMatches := 0
		for _, p := range r.Pairs {
			if p[1] == decoder.Boundary {
				boundaryMatches++
			}
		}
		if boundaryMatches%2 == 0 {
			t.Fatalf("shot %d: odd flagged count needs an odd number of boundary matches, got %d", shot, boundaryMatches)
		}
	}
	if odd < 50 {
		t.Fatalf("only %d odd syndromes exercised", odd)
	}
}

func TestMatchingsAreValid(t *testing.T) {
	m, g, gwt := build(t, 5, 3e-3)
	d := newSparse(g, gwt)
	rng := prng.New(808)
	smp := dem.NewSampler(m)
	s := bitvec.New(gwt.N)
	nonzero := 0
	for shot := 0; shot < 3000; shot++ {
		smp.Sample(rng, s)
		if !s.Any() {
			continue
		}
		nonzero++
		r := d.Decode(s)
		if ok, why := decoder.Validate(s, r); !ok {
			t.Fatalf("shot %d: invalid matching: %s", shot, why)
		}
	}
	if nonzero < 100 {
		t.Fatalf("only %d nonzero syndromes; test too weak", nonzero)
	}
}

func TestDeterministic(t *testing.T) {
	m, g, gwt := build(t, 3, 5e-3)
	d1, d2 := newSparse(g, gwt), newSparse(g, gwt)
	rng := prng.New(11)
	smp := dem.NewSampler(m)
	s := bitvec.New(gwt.N)
	for shot := 0; shot < 500; shot++ {
		smp.Sample(rng, s)
		if a, b := d1.Decode(s), d2.Decode(s); !sameResult(a, b) {
			t.Fatalf("nondeterministic decode at shot %d", shot)
		}
	}
}

// TestMatchesDenseExactly is the tentpole's validation gate: over ≥10k
// seeded shots per distance d ∈ {3, 5, 7, 9}, the sparse engine must agree
// with the dense blossom engine bit-for-bit — equal total matching weight,
// identical observable prediction, identical pair list.
func TestMatchesDenseExactly(t *testing.T) {
	for _, tc := range []struct {
		d     int
		p     float64
		shots int
	}{
		{d: 3, p: 1e-3, shots: 10000},
		{d: 5, p: 1e-3, shots: 10000},
		{d: 7, p: 1e-3, shots: 10000},
		{d: 9, p: 1e-3, shots: 10000},
	} {
		t.Run(shotName(tc.d), func(t *testing.T) {
			m, g, gwt := build(t, tc.d, tc.p)
			dense := mwpm.New(gwt)
			sparse := newSparse(g, gwt)
			rng := prng.New(uint64(1000 + tc.d))
			smp := dem.NewSampler(m)
			s := bitvec.New(gwt.N)
			nonzero := 0
			for shot := 0; shot < tc.shots; shot++ {
				smp.Sample(rng, s)
				if s.Any() {
					nonzero++
				}
				a, b := dense.Decode(s), sparse.Decode(s)
				if !sameResult(a, b) {
					t.Fatalf("shot %d: dense %+v vs sparse %+v (syndrome %v)",
						shot, a, b, s.Ones(nil))
				}
				if ok, why := decoder.Validate(s, b); !ok {
					t.Fatalf("shot %d: invalid sparse matching: %s", shot, why)
				}
			}
			if nonzero < tc.shots/20 {
				t.Fatalf("only %d nonzero syndromes; test too weak", nonzero)
			}
		})
	}
}

func shotName(d int) string { return "d" + string(rune('0'+d)) }

// TestMatchesDenseHighWeight stresses the regime the sparse engine exists
// for: heavy syndromes with many flagged detectors, where regions overlap,
// blossoms form inside components and the component decomposition carries
// the load.
func TestMatchesDenseHighWeight(t *testing.T) {
	for _, tc := range []struct {
		d     int
		p     float64
		shots int
	}{
		{d: 5, p: 1e-2, shots: 1500},
		{d: 7, p: 1e-2, shots: 1000},
		{d: 9, p: 1e-2, shots: 600},
		{d: 7, p: 3e-2, shots: 400},
	} {
		m, g, gwt := build(t, tc.d, tc.p)
		dense := mwpm.New(gwt)
		sparse := newSparse(g, gwt)
		rng := prng.New(uint64(77 + tc.d))
		smp := dem.NewSampler(m)
		s := bitvec.New(gwt.N)
		maxK := 0
		for shot := 0; shot < tc.shots; shot++ {
			smp.Sample(rng, s)
			if k := len(s.Ones(nil)); k > maxK {
				maxK = k
			}
			a, b := dense.Decode(s), sparse.Decode(s)
			if !sameResult(a, b) {
				t.Fatalf("d=%d p=%g shot %d: dense %+v vs sparse %+v",
					tc.d, tc.p, shot, a, b)
			}
		}
		if maxK < tc.d {
			t.Fatalf("d=%d p=%g: heaviest syndrome only reached k=%d; stress too weak", tc.d, tc.p, maxK)
		}
	}
}

// TestArbitrarySyndromes feeds adversarial (non-sampler) flagged sets: the
// matcher's contract is any detector subset, not just DEM-consistent ones.
func TestArbitrarySyndromes(t *testing.T) {
	_, g, gwt := build(t, 7, 1e-3)
	dense := mwpm.New(gwt)
	sparse := newSparse(g, gwt)
	rng := prng.New(424242)
	s := bitvec.New(gwt.N)
	for trial := 0; trial < 2000; trial++ {
		s.Reset()
		// Flip a uniformly random subset at densities the sampler never
		// produces, including widely separated detector pairs.
		density := 1 + rng.Uint64()%16
		for i := 0; i < gwt.N; i++ {
			if rng.Uint64()%(17*8) < density {
				s.Set(i)
			}
		}
		a, b := dense.Decode(s), sparse.Decode(s)
		if !sameResult(a, b) {
			t.Fatalf("trial %d: dense %+v vs sparse %+v (syndrome %v)", trial, a, b, s.Ones(nil))
		}
	}
}

// TestConcurrencyContract pins the documented concurrency model: one engine
// instance is NOT concurrent-safe, but independent instances sharing one
// immutable graph/GWT are — the arrangement server pools rely on. Run under
// -race this also proves the shared CSR and boundary-chain views are
// read-only.
func TestConcurrencyContract(t *testing.T) {
	m, g, gwt := build(t, 5, 3e-3)
	if dec := newSparse(g, gwt); decoder.IsConcurrentSafe(dec) {
		t.Fatal("sparse-backed MWPM must not declare ConcurrencySafe: Decode reuses per-instance scratch")
	}

	// Pre-sample shared syndromes, then decode them from several goroutines
	// with per-goroutine instances; every goroutine must see identical
	// results.
	rng := prng.New(3131)
	smp := dem.NewSampler(m)
	shots := make([]bitvec.Vec, 200)
	for i := range shots {
		s := bitvec.New(gwt.N)
		smp.Sample(rng, s)
		shots[i] = s
	}
	ref := newSparse(g, gwt)
	want := make([]decoder.Result, len(shots))
	for i, s := range shots {
		want[i] = ref.Decode(s)
	}
	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dec := newSparse(g, gwt) // one instance per goroutine
			for i, s := range shots {
				if got := dec.Decode(s); !sameResult(got, want[i]) {
					errs <- "concurrent instance diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func BenchmarkDecodeD7P3(b *testing.B) {
	m, g, gwt := build(b, 7, 1e-3)
	d := newSparse(g, gwt)
	rng := prng.New(1)
	smp := dem.NewSampler(m)
	pool := make([]bitvec.Vec, 0, 256)
	for len(pool) < 256 {
		s := bitvec.New(gwt.N)
		smp.Sample(rng, s)
		if s.Any() {
			pool = append(pool, s)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Decode(pool[i%len(pool)])
	}
}

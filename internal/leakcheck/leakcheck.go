// Package leakcheck is the shared goroutine-leak checker used by the
// service-layer test suites (internal/server, internal/cluster). It
// snapshots the live goroutines when a test starts and fails the test if
// any goroutine running this module's code is still alive at cleanup —
// the property every Close path in the decode service is held to.
package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// stacks snapshots every goroutine's stack, one string each, keyed by the
// goroutine ID (stable and never reused within a process).
func stacks() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[string]string)
	for _, g := range strings.Split(string(buf), "\n\n") {
		// The header line is "goroutine N [state]:".
		id, _, ok := strings.Cut(g, " [")
		if !ok {
			continue
		}
		out[id] = g
	}
	return out
}

// Check is the goroutine-leak checker: call it FIRST in a test so its
// cleanup runs LAST (after the test's own deferred Closes and t.Cleanup
// teardowns). It snapshots the live goroutines now and, at cleanup, polls
// until every goroutine created since — filtered to this module's code, so
// runtime and testing internals don't flake the diff — has exited.
func Check(t testing.TB) {
	t.Helper()
	before := stacks()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var leaked []string
		for {
			leaked = leaked[:0]
			for id, stack := range stacks() {
				if _, ok := before[id]; ok {
					continue
				}
				if !strings.Contains(stack, "astrea/") {
					continue // runtime, testing, net/http internals
				}
				if strings.Contains(stack, "leakcheck.") {
					continue // this cleanup itself
				}
				leaked = append(leaked, stack)
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("%d goroutines leaked:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	})
}

package circuit

import (
	"math"
	"testing"

	"astrea/internal/bitvec"
	"astrea/internal/prng"
)

// buildBellPairCircuit: H 0; CNOT 0,1; M 0 1 with a depolarizing slot on
// qubit 0 before the H.
func buildBellPairCircuit(p float64) *Circuit {
	c := New(2)
	c.Depolarize1(p, 0)
	c.H(0)
	c.CNOT(0, 1)
	c.Measure(0, 0, 1)
	if err := c.Finalize(); err != nil {
		panic(err)
	}
	return c
}

func TestFinalizeCountsMeasurements(t *testing.T) {
	c := New(3)
	c.Measure(0, 0)
	c.Measure(0, 1, 2)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	if c.NumMeas != 3 {
		t.Fatalf("NumMeas = %d, want 3", c.NumMeas)
	}
	if got := c.MeasIndex(1, 1); got != 2 {
		t.Fatalf("MeasIndex(1,1) = %d, want 2", got)
	}
}

func TestFinalizeRejectsBadDetector(t *testing.T) {
	c := New(1)
	c.Measure(0, 0)
	c.Detector(DetMeta{}, 5)
	if err := c.Finalize(); err == nil {
		t.Fatal("expected error for out-of-range detector reference")
	}
}

func TestFinalizeRejectsBadObservable(t *testing.T) {
	c := New(1)
	c.Measure(0, 0)
	c.Observable(3)
	if err := c.Finalize(); err == nil {
		t.Fatal("expected error for out-of-range observable reference")
	}
}

func TestAppendPanicsOnBadQubit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range qubit")
		}
	}()
	New(2).H(2)
}

// X before H becomes Z (invisible to Z measurement); Z before H becomes X
// (flips the measurement).
func TestHConjugation(t *testing.T) {
	c := New(1)
	c.Depolarize1(0.5, 0) // slot 0: injection site
	c.H(0)
	c.Measure(0, 0)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	f := c.NewFrame()

	c.RunInjected([]Injection{{Instr: 0, Target: 0, Kind: ErrX}}, f)
	if f.Meas.Get(0) {
		t.Fatal("X before H should not flip Z measurement")
	}
	c.RunInjected([]Injection{{Instr: 0, Target: 0, Kind: ErrZ}}, f)
	if !f.Meas.Get(0) {
		t.Fatal("Z before H should flip Z measurement")
	}
	c.RunInjected([]Injection{{Instr: 0, Target: 0, Kind: ErrY}}, f)
	if !f.Meas.Get(0) {
		t.Fatal("Y before H should flip Z measurement (Y -> Y under H)")
	}
}

// CNOT propagates X control->target and Z target->control.
func TestCNOTPropagation(t *testing.T) {
	c := New(2)
	c.Depolarize1(0.5, 0, 1)
	c.CNOT(0, 1)
	c.Measure(0, 0, 1)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	f := c.NewFrame()

	// X on control flips both measurements.
	c.RunInjected([]Injection{{Instr: 0, Target: 0, Kind: ErrX}}, f)
	if !f.Meas.Get(0) || !f.Meas.Get(1) {
		t.Fatalf("X on control: meas = %v %v, want true true", f.Meas.Get(0), f.Meas.Get(1))
	}
	// X on target flips only the target.
	c.RunInjected([]Injection{{Instr: 0, Target: 1, Kind: ErrX}}, f)
	if f.Meas.Get(0) || !f.Meas.Get(1) {
		t.Fatal("X on target should flip only target measurement")
	}
	// Z on target propagates to control but Z never flips Z measurements.
	c.RunInjected([]Injection{{Instr: 0, Target: 1, Kind: ErrZ}}, f)
	if f.Meas.Get(0) || f.Meas.Get(1) {
		t.Fatal("Z errors must not flip Z measurements")
	}
	if !f.Z.Get(0) || !f.Z.Get(1) {
		t.Fatal("Z on target should propagate to control through CNOT")
	}
}

func TestResetClearsFrame(t *testing.T) {
	c := New(1)
	c.Depolarize1(0.5, 0)
	c.Reset(0)
	c.Measure(0, 0)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	f := c.NewFrame()
	c.RunInjected([]Injection{{Instr: 0, Target: 0, Kind: ErrY}}, f)
	if f.Meas.Get(0) {
		t.Fatal("reset should clear errors before measurement")
	}
}

func TestMeasurementFlipInjection(t *testing.T) {
	c := New(1)
	c.Measure(0.5, 0)
	c.Measure(0.5, 0)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	f := c.NewFrame()
	// Flip the first record only: a readout error does not persist.
	c.RunInjected([]Injection{{Instr: 0, Target: 0, Kind: ErrFlip}}, f)
	if !f.Meas.Get(0) {
		t.Fatal("flip injection did not flip its record bit")
	}
	if f.Meas.Get(1) {
		t.Fatal("readout flip must not affect later measurements")
	}
}

func TestDetectorEventsAndObservables(t *testing.T) {
	c := New(2)
	c.Depolarize1(0.5, 0)
	c.Measure(0, 0, 1)                           // meas 0, 1
	c.Measure(0, 0)                              // meas 2
	c.Detector(DetMeta{Stab: 0, Round: 0}, 0, 2) // same qubit twice: X flips both -> detector quiet
	c.Detector(DetMeta{Stab: 1, Round: 0}, 1)
	c.Observable(0)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	f := c.NewFrame()
	c.RunInjected([]Injection{{Instr: 0, Target: 0, Kind: ErrX}}, f)
	det := bitvec.New(len(c.Detectors))
	c.DetectorEvents(f, det)
	if det.Get(0) {
		t.Fatal("detector 0 compares two flipped measurements and should stay quiet")
	}
	if det.Get(1) {
		t.Fatal("detector 1 watches untouched qubit 1")
	}
	if c.ObservableFlips(f) != 1 {
		t.Fatalf("observable mask = %b, want 1", c.ObservableFlips(f))
	}
}

func TestSampleInjectionsRate(t *testing.T) {
	const p = 0.01
	const shots = 200000
	c := New(4)
	c.Depolarize1(p, 0, 1, 2, 3)
	c.XError(p, 0, 1)
	c.Measure(p, 0, 1, 2, 3)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got, want := len(c.Slots()), 10; got != want {
		t.Fatalf("slots = %d, want %d", got, want)
	}
	rng := prng.New(99)
	total := 0
	perSlot := make([]int, 10)
	var buf []Injection
	for s := 0; s < shots; s++ {
		buf = c.SampleInjections(rng, buf[:0])
		total += len(buf)
		for _, in := range buf {
			// Identify the slot index by scanning (small table).
			for si, sl := range c.Slots() {
				if sl.Instr == in.Instr && sl.Target == in.Target {
					perSlot[si]++
				}
			}
		}
	}
	mean := float64(total) / shots
	want := c.TotalSlotProbability()
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("mean injections per shot %v, want ~%v", mean, want)
	}
	for si, n := range perSlot {
		freq := float64(n) / shots
		if math.Abs(freq-p) > 0.002 {
			t.Fatalf("slot %d fired at %v, want ~%v", si, freq, p)
		}
	}
}

func TestSampleInjectionsKinds(t *testing.T) {
	c := New(1)
	c.Depolarize1(1.0, 0) // always fires
	c.Measure(0, 0)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	rng := prng.New(7)
	counts := map[ErrKind]int{}
	var buf []Injection
	for i := 0; i < 30000; i++ {
		buf = c.SampleInjections(rng, buf[:0])
		if len(buf) != 1 {
			t.Fatalf("expected exactly 1 injection, got %d", len(buf))
		}
		counts[buf[0].Kind]++
	}
	for _, k := range []ErrKind{ErrX, ErrY, ErrZ} {
		frac := float64(counts[k]) / 30000
		if math.Abs(frac-1.0/3.0) > 0.02 {
			t.Fatalf("kind %v frequency %v, want ~1/3", k, frac)
		}
	}
}

// Sampled shots must equal injecting the same slots individually and XORing
// measurement flips (linearity of frame propagation).
func TestShotLinearity(t *testing.T) {
	c := New(3)
	c.Depolarize1(0.3, 0, 1, 2)
	c.H(0)
	c.CNOT(0, 1, 1, 2)
	c.Depolarize1(0.3, 0, 1, 2)
	c.Measure(0.1, 0, 1, 2)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	rng := prng.New(1234)
	f := c.NewFrame()
	single := c.NewFrame()
	var buf []Injection
	for shot := 0; shot < 500; shot++ {
		buf = c.SampleInjections(rng, buf[:0])
		c.RunInjected(buf, f)
		want := bitvec.New(c.NumMeas)
		for _, in := range buf {
			c.RunInjected([]Injection{in}, single)
			want.XorWith(single.Meas)
		}
		if !f.Meas.Equal(want) {
			t.Fatalf("shot %d: joint propagation %v != xor of singles %v (inj %v)",
				shot, f.Meas, want, buf)
		}
	}
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		OpH: "H", OpCNOT: "CNOT", OpM: "M", OpR: "R",
		OpDepolarize1: "DEPOLARIZE1", OpXError: "X_ERROR", OpZError: "Z_ERROR",
	} {
		if op.String() != want {
			t.Fatalf("Op %d String = %q, want %q", op, op.String(), want)
		}
	}
	for k, want := range map[ErrKind]string{ErrX: "X", ErrY: "Y", ErrZ: "Z", ErrFlip: "FLIP"} {
		if k.String() != want {
			t.Fatalf("kind String = %q, want %q", k.String(), want)
		}
	}
}

func TestBellCircuitSmoke(t *testing.T) {
	c := buildBellPairCircuit(0.1)
	rng := prng.New(5)
	f := c.NewFrame()
	var buf []Injection
	flips := 0
	const shots = 50000
	for i := 0; i < shots; i++ {
		buf = c.SampleInjections(rng, buf[:0])
		c.RunInjected(buf, f)
		// In a Bell-type frame, X on qubit 0 before H becomes Z (invisible);
		// Z becomes X and propagates to both; Y contributes its Z part -> X
		// on both too. So either both records flip or neither.
		if f.Meas.Get(0) != f.Meas.Get(1) {
			t.Fatal("bell frame flipped only one measurement")
		}
		if f.Meas.Get(0) {
			flips++
		}
	}
	// P(both flip) = P(slot fires) * P(kind in {Z, Y}) = 0.1 * 2/3.
	got := float64(flips) / shots
	want := 0.1 * 2.0 / 3.0
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("bell flip rate %v, want ~%v", got, want)
	}
}

func BenchmarkSampleAndRunSparse(b *testing.B) {
	// A circuit with many low-probability slots, as in real memory
	// experiments: cost should track hits, not slots.
	c := New(64)
	for r := 0; r < 20; r++ {
		qs := make([]int, 64)
		for i := range qs {
			qs[i] = i
		}
		c.Depolarize1(1e-4, qs...)
		c.CNOT(0, 1, 2, 3, 4, 5, 6, 7)
		c.Measure(1e-4, qs...)
	}
	if err := c.Finalize(); err != nil {
		b.Fatal(err)
	}
	rng := prng.New(1)
	f := c.NewFrame()
	var buf []Injection
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.SampleInjections(rng, buf[:0])
		c.RunInjected(buf, f)
	}
}

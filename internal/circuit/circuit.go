// Package circuit provides a stabilizer-circuit intermediate representation
// and a Pauli-frame simulator, the substrate this reproduction uses in place
// of Google's Stim framework.
//
// The circuits of interest (surface-code memory experiments) are fixed
// Clifford circuits with Pauli noise and Z-basis preparation, measurement and
// reset. For such circuits the distribution of detector events and logical
// observable flips is exactly captured by propagating Pauli *frames* —
// differences from the noiseless execution — which is orders of magnitude
// cheaper than state-vector or tableau simulation and is the same technique
// Stim uses for bulk sampling.
//
// A circuit is a flat list of instructions. Noise instructions declare "noise
// slots" (one per target); a sampled shot is a set of slot firings, which the
// frame simulator propagates deterministically. This factoring gives three
// consumers the same machinery:
//
//   - random sampling (Monte Carlo memory experiments),
//   - single-mechanism injection (detector error model extraction),
//   - failure injection in tests.
package circuit

import (
	"fmt"
	"sort"

	"astrea/internal/bitvec"
	"astrea/internal/prng"
)

// Op identifies an instruction kind.
type Op uint8

// Instruction kinds. Gate operations are noiseless; noise enters only
// through the explicit noise instructions and the measurement flip
// probability, mirroring the paper's noise model (§3.2).
const (
	// OpH applies a Hadamard to each target qubit.
	OpH Op = iota
	// OpCNOT applies controlled-X to consecutive (control, target) pairs.
	OpCNOT
	// OpM measures each target qubit in the Z basis, appending one bit per
	// target to the measurement record. P is the probability that a recorded
	// bit is flipped (a classical readout error; it does not disturb the
	// qubit).
	OpM
	// OpR resets each target qubit to |0>.
	OpR
	// OpDepolarize1 applies an X, Y or Z error (probability P/3 each) to
	// each target qubit independently.
	OpDepolarize1
	// OpXError applies an X error to each target with probability P.
	OpXError
	// OpZError applies a Z error to each target with probability P.
	OpZError
)

func (o Op) String() string {
	switch o {
	case OpH:
		return "H"
	case OpCNOT:
		return "CNOT"
	case OpM:
		return "M"
	case OpR:
		return "R"
	case OpDepolarize1:
		return "DEPOLARIZE1"
	case OpXError:
		return "X_ERROR"
	case OpZError:
		return "Z_ERROR"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Instr is a single circuit instruction.
type Instr struct {
	Op      Op
	Targets []int
	// P is the error probability for noise instructions and the readout
	// flip probability for OpM. It is ignored for other gates.
	P float64
}

// ErrKind is the Pauli (or readout flip) outcome of a noise slot firing.
type ErrKind uint8

// Noise outcomes.
const (
	ErrX ErrKind = iota
	ErrY
	ErrZ
	ErrFlip // readout flip of a measurement record bit
)

func (k ErrKind) String() string {
	switch k {
	case ErrX:
		return "X"
	case ErrY:
		return "Y"
	case ErrZ:
		return "Z"
	case ErrFlip:
		return "FLIP"
	}
	return fmt.Sprintf("ErrKind(%d)", uint8(k))
}

// Injection describes one concrete error: outcome Kind at slot (Instr,
// Target). Target indexes into Instrs[Instr].Targets.
type Injection struct {
	Instr  int
	Target int
	Kind   ErrKind
}

// Slot identifies one independent noise location: a (instruction, target)
// pair that can fire. Depolarizing slots fire with probability P and then
// choose X, Y or Z uniformly; X/Z-error and measurement slots have a single
// outcome.
type Slot struct {
	Instr  int
	Target int
	P      float64
}

// DetMeta records where a detector lives, for reporting and for building the
// decoding graph's node coordinates.
type DetMeta struct {
	// Stab is the index of the stabilizer this detector compares, in the
	// code's stabilizer numbering.
	Stab int
	// Round is the syndrome-extraction round of the later measurement in the
	// comparison; the final data-measurement detector row has Round == d.
	Round int
}

// Circuit is an immutable instruction list plus detector and observable
// definitions. Build one with the Op* append helpers, then call Finalize.
type Circuit struct {
	NumQubits int
	Instrs    []Instr

	// NumMeas is the total number of measurement record bits; set by
	// Finalize.
	NumMeas int

	// Detectors lists, per detector, the absolute measurement-record indices
	// whose XOR forms the detector event.
	Detectors [][]int
	// DetMetas has one entry per detector.
	DetMetas []DetMeta
	// Observables lists, per logical observable, the measurement indices
	// whose XOR forms the observable value.
	Observables [][]int

	// slots is the flattened list of noise slots in execution order; set by
	// Finalize.
	slots []Slot
	// measBase[i] is the measurement-record index of the first bit produced
	// by instruction i (only meaningful for OpM); set by Finalize.
	measBase []int
}

// New returns an empty circuit over n qubits.
func New(n int) *Circuit {
	return &Circuit{NumQubits: n}
}

// H appends a Hadamard layer.
func (c *Circuit) H(qubits ...int) { c.append(Instr{Op: OpH, Targets: qubits}) }

// CNOT appends controlled-X gates on consecutive (control, target) pairs.
func (c *Circuit) CNOT(pairs ...int) {
	if len(pairs)%2 != 0 {
		panic("circuit: CNOT needs (control, target) pairs")
	}
	c.append(Instr{Op: OpCNOT, Targets: pairs})
}

// Measure appends Z-basis measurements with readout flip probability p and
// returns the absolute record index of the first result.
func (c *Circuit) Measure(p float64, qubits ...int) int {
	base := c.countMeas()
	c.append(Instr{Op: OpM, Targets: qubits, P: p})
	return base
}

// Reset appends resets to |0>.
func (c *Circuit) Reset(qubits ...int) { c.append(Instr{Op: OpR, Targets: qubits}) }

// Depolarize1 appends single-qubit depolarizing noise of strength p.
func (c *Circuit) Depolarize1(p float64, qubits ...int) {
	c.append(Instr{Op: OpDepolarize1, Targets: qubits, P: p})
}

// XError appends X noise of probability p.
func (c *Circuit) XError(p float64, qubits ...int) {
	c.append(Instr{Op: OpXError, Targets: qubits, P: p})
}

// ZError appends Z noise of probability p.
func (c *Circuit) ZError(p float64, qubits ...int) {
	c.append(Instr{Op: OpZError, Targets: qubits, P: p})
}

// Detector declares a detector as the XOR of the given measurement indices.
func (c *Circuit) Detector(meta DetMeta, measIdx ...int) {
	c.Detectors = append(c.Detectors, measIdx)
	c.DetMetas = append(c.DetMetas, meta)
}

// Observable declares a logical observable as the XOR of the given
// measurement indices.
func (c *Circuit) Observable(measIdx ...int) {
	c.Observables = append(c.Observables, measIdx)
}

func (c *Circuit) append(in Instr) {
	for _, q := range in.Targets {
		if q < 0 || q >= c.NumQubits {
			panic(fmt.Sprintf("circuit: qubit %d out of range [0,%d)", q, c.NumQubits))
		}
	}
	c.Instrs = append(c.Instrs, in)
}

func (c *Circuit) countMeas() int {
	n := 0
	for _, in := range c.Instrs {
		if in.Op == OpM {
			n += len(in.Targets)
		}
	}
	return n
}

// Finalize computes measurement numbering and the noise-slot table and
// validates detector/observable references. It must be called once after
// construction and before simulation.
func (c *Circuit) Finalize() error {
	c.measBase = make([]int, len(c.Instrs))
	c.slots = c.slots[:0]
	n := 0
	for i, in := range c.Instrs {
		c.measBase[i] = n
		switch in.Op {
		case OpM:
			n += len(in.Targets)
			if in.P > 0 {
				for t := range in.Targets {
					c.slots = append(c.slots, Slot{Instr: i, Target: t, P: in.P})
				}
			}
		case OpDepolarize1, OpXError, OpZError:
			if in.P > 0 {
				for t := range in.Targets {
					c.slots = append(c.slots, Slot{Instr: i, Target: t, P: in.P})
				}
			}
		case OpCNOT, OpH, OpR:
			// Gates measure nothing and carry no noise slots.
		}
	}
	c.NumMeas = n
	for d, refs := range c.Detectors {
		for _, m := range refs {
			if m < 0 || m >= n {
				return fmt.Errorf("circuit: detector %d references measurement %d of %d", d, m, n)
			}
		}
	}
	for o, refs := range c.Observables {
		for _, m := range refs {
			if m < 0 || m >= n {
				return fmt.Errorf("circuit: observable %d references measurement %d of %d", o, m, n)
			}
		}
	}
	return nil
}

// Slots returns the circuit's noise slots in execution order. The returned
// slice is owned by the circuit; do not modify it.
func (c *Circuit) Slots() []Slot { return c.slots }

// MeasIndex returns the absolute measurement-record index produced by target
// t of instruction i (which must be an OpM).
func (c *Circuit) MeasIndex(i, t int) int {
	if c.Instrs[i].Op != OpM {
		panic("circuit: MeasIndex on non-measurement instruction")
	}
	return c.measBase[i] + t
}

// Frame holds the Pauli frame (per-qubit X and Z difference from the
// noiseless execution) and the measurement-record flips accumulated during a
// run. Reuse frames across shots via Reset to avoid allocation.
type Frame struct {
	X, Z bitvec.Vec
	Meas bitvec.Vec
}

// NewFrame returns a zeroed frame sized for the circuit.
func (c *Circuit) NewFrame() *Frame {
	return &Frame{
		X:    bitvec.New(c.NumQubits),
		Z:    bitvec.New(c.NumQubits),
		Meas: bitvec.New(c.NumMeas),
	}
}

// Reset zeroes the frame for reuse.
func (f *Frame) Reset() {
	f.X.Reset()
	f.Z.Reset()
	f.Meas.Reset()
}

// applyPauli folds a Pauli error into the frame.
func (f *Frame) applyPauli(q int, k ErrKind) {
	switch k {
	case ErrX:
		f.X.Flip(q)
	case ErrZ:
		f.Z.Flip(q)
	case ErrY:
		f.X.Flip(q)
		f.Z.Flip(q)
	default:
		panic("circuit: applyPauli with non-Pauli kind")
	}
}

// step advances the frame through gate instruction i (noise instructions are
// inert here; they fire through injections).
func (c *Circuit) step(i int, f *Frame) {
	in := &c.Instrs[i]
	switch in.Op {
	case OpH:
		for _, q := range in.Targets {
			x, z := f.X.Get(q), f.Z.Get(q)
			f.X.SetTo(q, z)
			f.Z.SetTo(q, x)
		}
	case OpCNOT:
		for j := 0; j < len(in.Targets); j += 2 {
			ctl, tgt := in.Targets[j], in.Targets[j+1]
			if f.X.Get(ctl) {
				f.X.Flip(tgt)
			}
			if f.Z.Get(tgt) {
				f.Z.Flip(ctl)
			}
		}
	case OpM:
		base := c.measBase[i]
		for j, q := range in.Targets {
			if f.X.Get(q) {
				f.Meas.Flip(base + j)
			}
		}
	case OpR:
		for _, q := range in.Targets {
			f.X.Clear(q)
			f.Z.Clear(q)
		}
	case OpDepolarize1, OpXError, OpZError:
		// Noise is injected externally.
	}
}

// RunInjected resets the frame and propagates exactly the given injections
// (which must be sorted by instruction index; ties in any order). This is
// the deterministic engine behind both DEM extraction and sampled shots.
func (c *Circuit) RunInjected(inj []Injection, f *Frame) {
	f.Reset()
	if len(inj) == 0 {
		return
	}
	next := 0
	start := inj[0].Instr
	for i := start; i < len(c.Instrs); i++ {
		// Fire injections scheduled at instruction i. Measurement flips are
		// applied after the instruction executes (the record exists then);
		// Pauli noise instructions are pure noise markers, so ordering
		// within them is immaterial; for OpM the Pauli convention is
		// "before" (an X error present at measurement flips the result),
		// which callers encode by attaching the injection to a preceding
		// noise instruction.
		for next < len(inj) && inj[next].Instr == i {
			in := inj[next]
			instr := &c.Instrs[i]
			if in.Kind == ErrFlip {
				if instr.Op != OpM {
					panic("circuit: ErrFlip injection on non-measurement")
				}
				// Applied below, after the measurement executes.
			} else {
				f.applyPauli(instr.Targets[in.Target], in.Kind)
			}
			next++
		}
		// Rewind: Pauli injections must land before the instruction acts,
		// flips after. Handle by executing the instruction between the two
		// kinds: re-scan is avoided by noting that noise instructions are
		// no-ops in step() and flips commute with everything except their
		// own record bit.
		c.step(i, f)
		for j := next - 1; j >= 0 && inj[j].Instr == i; j-- {
			if inj[j].Kind == ErrFlip {
				f.Meas.Flip(c.measBase[i] + inj[j].Target)
			}
		}
	}
}

// SampleInjections draws a random shot's injections using geometric skipping
// over the noise-slot list, appending to dst. The expected cost is
// proportional to the number of errors that fire, not the circuit size.
func (c *Circuit) SampleInjections(rng *prng.Source, dst []Injection) []Injection {
	// Slots are grouped in runs of equal probability (each noise instruction
	// contributes a run), but geometric skipping requires a single uniform
	// probability. Walk runs of equal P.
	i := 0
	for i < len(c.slots) {
		p := c.slots[i].P
		j := i
		for j < len(c.slots) && c.slots[j].P == p {
			j++
		}
		k := i + rng.Geometric(p)
		for k < j {
			s := c.slots[k]
			kind := ErrFlip
			switch c.Instrs[s.Instr].Op {
			case OpDepolarize1:
				kind = ErrKind(rng.Intn(3)) // X, Y or Z uniformly
			case OpXError:
				kind = ErrX
			case OpZError:
				kind = ErrZ
			case OpM:
				kind = ErrFlip
			default:
				// Finalize creates slots only for the ops above.
				panic(fmt.Sprintf("circuit: noise slot on gate op %v", c.Instrs[s.Instr].Op))
			}
			dst = append(dst, Injection{Instr: s.Instr, Target: s.Target, Kind: kind})
			k += 1 + rng.Geometric(p)
		}
		i = j
	}
	return dst
}

// SampleKInjections draws a shot conditioned on exactly k noise slots
// firing, appending to dst. All slots in the paper's noise model share the
// same probability p, so conditioned on the count the fired set is uniform
// over slot subsets of size k; this is the sampler behind the Appendix A.1
// stratified logical-error-rate estimator (Equation 3). It panics if the
// circuit's slots do not all share one probability, or k exceeds the slot
// count.
func (c *Circuit) SampleKInjections(rng *prng.Source, k int, dst []Injection) []Injection {
	n := len(c.slots)
	if k > n {
		panic(fmt.Sprintf("circuit: k=%d exceeds %d slots", k, n))
	}
	for _, s := range c.slots {
		if s.P != c.slots[0].P {
			panic("circuit: SampleKInjections requires uniform slot probability")
		}
	}
	// Floyd's algorithm for a uniform k-subset of [0, n).
	chosen := make(map[int]bool, k)
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		if chosen[t] {
			t = j
		}
		chosen[t] = true
	}
	idx := make([]int, 0, k)
	for i := range chosen {
		idx = append(idx, i)
	}
	sort.Ints(idx) // injections must be in execution order
	for _, si := range idx {
		s := c.slots[si]
		kind := ErrFlip
		switch c.Instrs[s.Instr].Op {
		case OpDepolarize1:
			kind = ErrKind(rng.Intn(3))
		case OpXError:
			kind = ErrX
		case OpZError:
			kind = ErrZ
		case OpM:
			kind = ErrFlip
		default:
			// Finalize creates slots only for the ops above.
			panic(fmt.Sprintf("circuit: noise slot on gate op %v", c.Instrs[s.Instr].Op))
		}
		dst = append(dst, Injection{Instr: s.Instr, Target: s.Target, Kind: kind})
	}
	return dst
}

// DetectorEvents XORs the frame's measurement flips into dst, one bit per
// detector. dst must have length len(c.Detectors).
func (c *Circuit) DetectorEvents(f *Frame, dst bitvec.Vec) {
	if dst.Len() != len(c.Detectors) {
		panic("circuit: detector buffer length mismatch")
	}
	dst.Reset()
	for d, refs := range c.Detectors {
		v := false
		for _, m := range refs {
			if f.Meas.Get(m) {
				v = !v
			}
		}
		dst.SetTo(d, v)
	}
}

// ObservableFlips returns a bitmask of logical observables flipped by the
// frame (bit k set means observable k flipped).
func (c *Circuit) ObservableFlips(f *Frame) uint64 {
	if len(c.Observables) > 64 {
		panic("circuit: more than 64 observables")
	}
	var mask uint64
	for o, refs := range c.Observables {
		v := false
		for _, m := range refs {
			if f.Meas.Get(m) {
				v = !v
			}
		}
		if v {
			mask |= 1 << uint(o)
		}
	}
	return mask
}

// TotalSlotProbability returns the sum of slot probabilities — the expected
// number of error events per shot. Useful for sanity checks and for scaling
// Monte Carlo budgets.
func (c *Circuit) TotalSlotProbability() float64 {
	total := 0.0
	for _, s := range c.slots {
		total += s.P
	}
	return total
}

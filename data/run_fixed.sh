#!/bin/bash
set -x
cd /root/repo
BIN=/tmp/astreabin
go build -o $BIN ./cmd/astrea
D=/root/repo/data
$BIN -shotsperk 60000 $D/exp2_table4.txt 2 3 5 7
$BIN -shotsperk 60000 $D/exp4_fig4.txt 4
$BIN -shotsperk 20000 $D/exp1_fig12_d7.txt 1 7
$BIN -shotsperk 8000  $D/exp1_fig14_d9.txt 1 9
$BIN -shotsperk 15000 $D/exp13_fig13.txt 13
$BIN -shotsperk 8000  $D/exp12_table7.txt 12 9 500 1000 100
$BIN -shotsperk 60000 $D/exp14_table9.txt 14
echo FIXED_DONE

#!/bin/bash
set -x
cd /root/repo
BIN=/tmp/astreabin
go build -o $BIN ./cmd/astrea
D=/root/repo/data
$BIN -shotsperk 40000 $D/exp14_table9_p3e4.txt 14 3e-4
$BIN -budget quick $D/exp15_streaming.txt 15 7 1e-3
$BIN -budget standard -shots 2000000 $D/exp16_compress.txt 16 9 1e-3
$BIN -shots 3000000 $D/exp17_nonuniform.txt 17 5
$BIN -shots 3000000 $D/exp18_xz.txt 18 5 2e-3
$BIN -shotsperk 150 $D/exp19_ablation.txt 19 7 5e-3
$BIN -shots 2000000 $D/exp20_quant.txt 20 5 1e-3
echo EXT_DONE

#!/bin/bash
# Reproduction runs backing EXPERIMENTS.md. Budgets sized for a 2-core box.
set -x
cd /root/repo
BIN=/tmp/astreabin
go build -o $BIN ./cmd/astrea
D=/root/repo/data
$BIN -budget quick $D/exp0_static.txt 0
$BIN -shots 3000000 -shotsperk 100000 $D/exp6_table2_fig6.txt 6 3 1e-4
$BIN -shots 3000000 -shotsperk 100000 $D/exp6_d5.txt 6 5 1e-4
$BIN -shots 3000000 -shotsperk 60000  $D/exp6_d7.txt 6 7 1e-4
$BIN -shots 200000  -shotsperk 100    $D/exp3_fig3.txt 3 7 1e-3
$BIN -shots 1000000 -shotsperk 60000  $D/exp4_fig4.txt 4
$BIN -shots 3000000 -shotsperk 60000  $D/exp5_table5.txt 5
$BIN -shotsperk 60000 $D/exp2_table4.txt 2 3 5 7
$BIN -shots 5000000 -shotsperk 100 $D/exp9_fig9.txt 9
$BIN -shots 1000000 -shotsperk 100 $D/exp10_fig10.txt 10 7 1e-3
$BIN -shotsperk 20000 $D/exp1_fig12_d7.txt 1 7
$BIN -shotsperk 8000  $D/exp1_fig14_d9.txt 1 9
$BIN -shotsperk 15000 $D/exp13_fig13.txt 13
$BIN -shotsperk 8000  $D/exp12_table7.txt 12 9 500 1000 100
$BIN -shotsperk 60000 $D/exp14_table9.txt 14
echo ALL_DONE

package astrea

import (
	"path/filepath"
	"testing"
)

// TestLoadedSystemDecodesBitIdentical is the tentpole contract: a system
// hydrated from a compiled .astc bundle must produce byte-for-byte the
// decisions a freshly built system produces — same fingerprint, same
// observable prediction and matching weight on every sampled shot.
func TestLoadedSystemDecodesBitIdentical(t *testing.T) {
	const d, p = 3, 1e-3
	fresh, err := New(d, p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	art, err := Compile(d, d, BasisZ, p)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	path := filepath.Join(t.TempDir(), "bundle.astc")
	if err := art.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	loaded, err := LoadSystem(path)
	if err != nil {
		t.Fatalf("LoadSystem: %v", err)
	}

	if got, want := loaded.Fingerprint(), fresh.Fingerprint(); got != want {
		t.Fatalf("loaded fingerprint %s, fresh %s", got, want)
	}
	if loaded.Distance() != d || loaded.PhysicalErrorRate() != p {
		t.Fatalf("loaded operating point d=%d p=%g, want d=%d p=%g",
			loaded.Distance(), loaded.PhysicalErrorRate(), d, p)
	}

	// Same seed on both systems: identical models sample identical shots,
	// and identical tables must decode them identically.
	const shots = 1000
	freshDec, loadedDec := fresh.Astrea(), loaded.Astrea()
	freshMWPM, loadedMWPM := fresh.MWPM(), loaded.MWPM()
	fs, ls := fresh.NewShotSource(42), loaded.NewShotSource(42)
	for i := 0; i < shots; i++ {
		syn, obsF := fs.Next()
		syn2, obsL := ls.Next()
		if obsF != obsL {
			t.Fatalf("shot %d: sampled observables diverge (%#x vs %#x) — models differ", i, obsF, obsL)
		}
		for b := 0; b < syn.Len(); b++ {
			if syn.Get(b) != syn2.Get(b) {
				t.Fatalf("shot %d: sampled syndromes diverge at bit %d", i, b)
			}
		}
		rf, rl := freshDec.Decode(syn), loadedDec.Decode(syn)
		if rf.ObsPrediction != rl.ObsPrediction || rf.Weight != rl.Weight {
			t.Fatalf("shot %d: Astrea decisions diverge: fresh (obs %#x, w %v), loaded (obs %#x, w %v)",
				i, rf.ObsPrediction, rf.Weight, rl.ObsPrediction, rl.Weight)
		}
		mf, ml := freshMWPM.Decode(syn), loadedMWPM.Decode(syn)
		if mf.ObsPrediction != ml.ObsPrediction || mf.Weight != ml.Weight {
			t.Fatalf("shot %d: MWPM decisions diverge: fresh (obs %#x, w %v), loaded (obs %#x, w %v)",
				i, mf.ObsPrediction, mf.Weight, ml.ObsPrediction, ml.Weight)
		}
	}
}

// TestSystemArtifactExport closes the loop the other way: a built system
// exports an artifact whose encoding equals a direct Compile of the same
// operating point.
func TestSystemArtifactExport(t *testing.T) {
	sys, err := New(3, 1e-3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	exported, err := sys.Artifact()
	if err != nil {
		t.Fatalf("System.Artifact: %v", err)
	}
	direct, err := Compile(3, 3, BasisZ, 1e-3)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	e1, e2 := exported.Encode(), direct.Encode()
	if len(e1) != len(e2) {
		t.Fatalf("export and direct compile encode to %d vs %d bytes", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("export and direct compile diverge at byte %d", i)
		}
	}
}

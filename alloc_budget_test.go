package astrea

import (
	"testing"

	"astrea/internal/mwpm"
	"astrea/internal/sparsemwpm"
)

// Committed steady-state allocation budgets for warm d=7 sparse decode.
// The hotalloc analyzer forbids the constructs that put allocations on the
// per-shot path statically; this test is the dynamic side of the same
// gate. Budgets are exact ceilings, not targets — lowering them is free,
// raising one is a regression that needs a reviewed justification.
const (
	// sparseMatchAllocBudget bounds Engine.Match on a warm engine: all
	// scratch (regions, labels, heaps, component solver state) is
	// engine-owned and amortised, so steady state adds nothing.
	sparseMatchAllocBudget = 0.0
	// sparseDecodeAllocBudget bounds the full adapter Decode: Match plus
	// the Result's caller-owned Pairs copy (one make per decode).
	sparseDecodeAllocBudget = 1.0
)

// TestSparseDecodeAllocBudget pins steady-state sparse decode (warm
// environment, d=7, the strata d=7 populates) to the committed allocs/op
// budget via testing.AllocsPerRun. CI runs this as a named step so a
// regression names the offending path.
func TestSparseDecodeAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a d=7 Monte-Carlo environment")
	}
	cell := matchingCell{D: 7, P: 3e-3, LoHW: 2, HiHW: 14}
	env, pool := matchingPool(t, cell, 200)
	eng := sparsemwpm.New(env.Graph)
	dec := mwpm.NewWithEngine(env.GWT, eng)

	// Flagged-index views for the Engine.Match measurement (Match takes
	// positions, the adapter extracts them from the syndrome).
	flagged := make([][]int, 0, len(pool))
	for _, s := range pool {
		if ones := s.Ones(nil); len(ones) >= 2 {
			flagged = append(flagged, ones)
		}
	}
	if len(flagged) < 20 {
		t.Fatalf("only %d multi-defect syndromes in the pool", len(flagged))
	}

	// Warm every scratch buffer: the budget is a steady-state contract,
	// first-touch growth is amortised setup.
	for _, s := range pool {
		dec.Decode(s)
	}

	i := 0
	got := testing.AllocsPerRun(4*len(flagged), func() {
		eng.Match(flagged[i%len(flagged)])
		i++
	})
	if got > sparseMatchAllocBudget {
		t.Errorf("warm sparsemwpm Engine.Match: %.2f allocs/op, budget %.0f — a per-shot allocation crept into the hot loop", got, sparseMatchAllocBudget)
	}

	j := 0
	got = testing.AllocsPerRun(4*len(pool), func() {
		dec.Decode(pool[j%len(pool)])
		j++
	})
	if got > sparseDecodeAllocBudget {
		t.Errorf("warm sparse Decode: %.2f allocs/op, budget %.0f (Match + the Result.Pairs copy)", got, sparseDecodeAllocBudget)
	}
}

// TestDenseDecodeAllocBudget holds the dense adapter to the same
// discipline on its own engine, so the comparison baseline stays honest.
func TestDenseDecodeAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a d=7 Monte-Carlo environment")
	}
	cell := matchingCell{D: 7, P: 3e-3, LoHW: 2, HiHW: 14}
	env, pool := matchingPool(t, cell, 200)
	dec := mwpm.New(env.GWT)
	for _, s := range pool {
		dec.Decode(s)
	}
	j := 0
	got := testing.AllocsPerRun(4*len(pool), func() {
		dec.Decode(pool[j%len(pool)])
		j++
	})
	// The dense engine allocates its per-call matrix views lazily but
	// reuses them warm; the adapter adds the Pairs copy.
	if got > 1.0 {
		t.Errorf("warm dense Decode: %.2f allocs/op, budget 1 (the Result.Pairs copy)", got)
	}
}

package astrea

import (
	"encoding/json"
	"net"
	"os"
	"sort"
	"testing"
	"time"

	"astrea/internal/compress"
	"astrea/internal/montecarlo"
	"astrea/internal/server"
)

// streamingBench is the schema of BENCH_streaming.json: the committed
// operating-point numbers for the streaming subsystem, with the whole-shot
// decode of the same shots as the baseline. Regenerate with
//
//	ASTREA_WRITE_BENCH=1 go test -run '^TestStreamingBenchArtifact$' .
type streamingBench struct {
	Distance int     `json:"distance"`
	P        float64 `json:"p"`
	Rounds   int     `json:"rounds"`
	Shots    int     `json:"shots"`

	Streaming struct {
		Windows       int     `json:"windows"`
		ForcedCuts    int     `json:"forced_cuts"`
		GapRounds     int     `json:"gap_rounds"`
		WindowRounds  int     `json:"window_rounds"`
		WindowsPerSec float64 `json:"windows_per_sec"`
		RoundsPerSec  float64 `json:"rounds_per_sec"`
		CommitP50Ns   float64 `json:"commit_p50_ns"`
		CommitP95Ns   float64 `json:"commit_p95_ns"`
		CommitP99Ns   float64 `json:"commit_p99_ns"`
	} `json:"streaming"`

	WholeShot struct {
		ShotsPerSec  float64 `json:"shots_per_sec"`
		RoundsPerSec float64 `json:"rounds_per_sec"`
	} `json:"whole_shot"`

	// Resume is the resilience scenario: the same class of round stream
	// pushed over a real socket through a resumable session whose
	// connection is severed at scheduled points, with bit-identity against
	// the uninterrupted local decode enforced (zero mismatches).
	Resume struct {
		Rounds         int     `json:"rounds"`
		Kills          int     `json:"kills"`
		Reconnects     int     `json:"reconnects"`
		ReplayedRounds uint64  `json:"replayed_rounds"`
		RecoveryP50Ns  float64 `json:"recovery_p50_ns"`
		RecoveryP95Ns  float64 `json:"recovery_p95_ns"`
		RecoveryMaxNs  float64 `json:"recovery_max_ns"`
	} `json:"resume"`
}

// TestStreamingBenchArtifact keeps BENCH_streaming.json honest: the
// committed file must parse against the schema, describe the benchmark's
// actual operating point, and carry non-degenerate throughput numbers.
// With ASTREA_WRITE_BENCH=1 the test regenerates the file instead.
func TestStreamingBenchArtifact(t *testing.T) {
	const path = "BENCH_streaming.json"
	const distance, p, shots = 5, 1e-3, 100

	if os.Getenv("ASTREA_WRITE_BENCH") != "" {
		sys, err := New(distance, p)
		if err != nil {
			t.Fatal(err)
		}
		rows := streamBenchRows(sys, 1, shots)

		var bench streamingBench
		bench.Distance, bench.P, bench.Shots, bench.Rounds = distance, p, shots, len(rows)

		const iters = 5
		var sojourns []float64
		start := time.Now()
		for i := 0; i < iters; i++ {
			commits, stats, err := sys.DecodeClosedStream(StreamConfig{Decoder: "astrea"}, rows)
			if err != nil {
				t.Fatal(err)
			}
			bench.Streaming.Windows = int(stats.Windows)
			bench.Streaming.ForcedCuts = int(stats.ForcedCuts)
			bench.Streaming.GapRounds = stats.GapRounds
			bench.Streaming.WindowRounds = stats.WindowRounds
			sojourns = sojourns[:0]
			for _, c := range commits {
				sojourns = append(sojourns, c.SojournNs)
			}
		}
		sec := time.Since(start).Seconds()
		bench.Streaming.WindowsPerSec = float64(iters*bench.Streaming.Windows) / sec
		bench.Streaming.RoundsPerSec = float64(iters*len(rows)) / sec
		sort.Float64s(sojourns)
		bench.Streaming.CommitP50Ns = quantileNs(sojourns, 0.50)
		bench.Streaming.CommitP95Ns = quantileNs(sojourns, 0.95)
		bench.Streaming.CommitP99Ns = quantileNs(sojourns, 0.99)

		dec := sys.Astrea()
		src := sys.NewShotSource(1)
		wholeShots := make([]Syndrome, 0, shots)
		for len(wholeShots) < cap(wholeShots) {
			s, _ := src.Next()
			wholeShots = append(wholeShots, s.Clone())
		}
		roundsPerShot := sys.NumDetectors() / sys.StreamRowWidth()
		start = time.Now()
		for i := 0; i < iters; i++ {
			for _, s := range wholeShots {
				dec.Decode(s)
			}
		}
		sec = time.Since(start).Seconds()
		bench.WholeShot.ShotsPerSec = float64(iters*len(wholeShots)) / sec
		bench.WholeShot.RoundsPerSec = float64(iters*len(wholeShots)*roundsPerShot) / sec

		// Resume scenario: a live daemon, a resumable session, scheduled
		// connection kills, bit-identity enforced by Verify.
		env, err := montecarlo.SharedEnv(distance, distance, p)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Distances: []int{distance},
			P:         p,
			Envs:      map[int]*montecarlo.Env{distance: env},
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		rrep, err := server.RunStreamResumeLoad(server.StreamResumeLoadConfig{
			Addr:     ln.Addr().String(),
			Distance: distance,
			P:        p,
			Codec:    compress.IDSparse,
			Rounds:   len(rows),
			Seed:     1,
			Kills:    3,
			Verify:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if rrep.Mismatches != 0 {
			t.Fatalf("resume scenario broke bit-identity: %d mismatched commits", rrep.Mismatches)
		}
		bench.Resume.Rounds = rrep.Rounds
		bench.Resume.Kills = rrep.Kills
		bench.Resume.Reconnects = rrep.Reconnects
		bench.Resume.ReplayedRounds = rrep.ReplayedRounds
		bench.Resume.RecoveryP50Ns = quantileNs(rrep.RecoveryNs, 0.50)
		bench.Resume.RecoveryP95Ns = quantileNs(rrep.RecoveryNs, 0.95)
		bench.Resume.RecoveryMaxNs = quantileNs(rrep.RecoveryNs, 1)

		out, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %s", path, out)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("committed benchmark artifact missing: %v (regenerate with ASTREA_WRITE_BENCH=1)", err)
	}
	var bench streamingBench
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("%s does not parse: %v", path, err)
	}
	if bench.Distance != distance || bench.P != p || bench.Shots != shots {
		t.Fatalf("%s describes (d=%d, p=%g, shots=%d); the benchmark runs (d=%d, p=%g, shots=%d) — regenerate it",
			path, bench.Distance, bench.P, bench.Shots, distance, p, shots)
	}
	if bench.Streaming.Windows <= 0 || bench.Streaming.WindowsPerSec <= 0 || bench.Streaming.RoundsPerSec <= 0 {
		t.Fatalf("degenerate streaming numbers: %+v", bench.Streaming)
	}
	if bench.Streaming.CommitP50Ns <= 0 || bench.Streaming.CommitP99Ns < bench.Streaming.CommitP50Ns {
		t.Fatalf("degenerate commit quantiles: %+v", bench.Streaming)
	}
	if bench.WholeShot.ShotsPerSec <= 0 || bench.WholeShot.RoundsPerSec <= 0 {
		t.Fatalf("degenerate whole-shot baseline: %+v", bench.WholeShot)
	}
	if bench.Streaming.GapRounds <= 0 || bench.Streaming.WindowRounds <= bench.Streaming.GapRounds {
		t.Fatalf("implausible resolved planner parameters: %+v", bench.Streaming)
	}
	if bench.Resume.Rounds <= 0 || bench.Resume.Reconnects <= 0 || bench.Resume.ReplayedRounds == 0 {
		t.Fatalf("degenerate resume scenario (a resilience run with no recoveries measures nothing): %+v", bench.Resume)
	}
	if bench.Resume.RecoveryP50Ns <= 0 || bench.Resume.RecoveryP95Ns < bench.Resume.RecoveryP50Ns ||
		bench.Resume.RecoveryMaxNs < bench.Resume.RecoveryP95Ns {
		t.Fatalf("recovery quantiles are not a CDF: %+v", bench.Resume)
	}
}

package astrea_test

import (
	"fmt"

	"astrea"
)

// Example demonstrates the core decode loop: build a system, sample noisy
// shots, decode with Astrea, and score logical errors against the exact
// software MWPM baseline.
func Example() {
	sys, err := astrea.New(3, 1e-3)
	if err != nil {
		panic(err)
	}
	fast := sys.Astrea()
	gold := sys.MWPM()
	src := sys.NewShotSource(2023)

	shots, agreements := 0, 0
	for shots < 2000 {
		syndrome, _ := src.Next()
		shots++
		if fast.Decode(syndrome).ObsPrediction == gold.Decode(syndrome).ObsPrediction {
			agreements++
		}
	}
	fmt.Printf("distance %d, %d detectors\n", sys.Distance(), sys.NumDetectors())
	fmt.Printf("Astrea agreed with exact MWPM on %d of %d shots\n", agreements, shots)
	// Output:
	// distance 3, 16 detectors
	// Astrea agreed with exact MWPM on 2000 of 2000 shots
}

// ExampleLatencyNs shows the paper's worst-case decode: Hamming weight 10
// costs 11 fetch + 103 decode cycles at 250 MHz.
func ExampleLatencyNs() {
	r := astrea.Result{Cycles: 114}
	fmt.Printf("%.0f ns\n", astrea.LatencyNs(r))
	// Output:
	// 456 ns
}

// ExampleSystem_EstimateLERStratified reaches logical error rates far below
// direct-sampling resolution using the paper's Equation 3 estimator.
func ExampleSystem_EstimateLERStratified() {
	sys, err := astrea.New(3, 1e-4)
	if err != nil {
		panic(err)
	}
	lers, err := sys.EstimateLERStratified(6, 4000, 1, astrea.MWPMDecoder)
	if err != nil {
		panic(err)
	}
	// The paper's Table 4 reports 8.1e-5 at this operating point; this
	// reproduction's noise substrate lands near 1e-5.
	fmt.Println(lers[0] > 1e-6 && lers[0] < 1e-4)
	// Output:
	// true
}

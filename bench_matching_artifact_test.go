package astrea

import (
	"encoding/json"
	"math"
	"os"
	"testing"
	"time"

	"astrea/internal/bitvec"
	"astrea/internal/decoder"
	"astrea/internal/mwpm"
	"astrea/internal/sparsemwpm"
)

// matchingBench is the schema of BENCH_matching.json: the committed
// head-to-head of the two exact MWPM engines over the matchingCells grid,
// with bit-identity between the engines enforced on every timed syndrome.
// Speedup is dense time over sparse time, so > 1 means the sparse engine
// won the cell. Regenerate with
//
//	ASTREA_WRITE_BENCH=1 go test -run '^TestMatchingBenchArtifact$' .
//
// The committed numbers tell an honest story: against a warm precomputed
// all-pairs table, the dense engine wins most strata at the distances this
// repo serves — exactness forces the sparse engine's regions around
// odd clusters out to their full boundary radius, which is exactly the
// information the table holds precomputed. The sparse engine's value is
// that it needs no such table: matching state is O(E) in the decoding
// graph, independent of the all-pairs closure.
type matchingBench struct {
	// AgreementShots counts timed syndromes cross-checked between the
	// engines (identical prediction, weight bits and pair list);
	// Mismatches must be zero.
	AgreementShots int `json:"agreement_shots"`
	Mismatches     int `json:"mismatches"`

	Cells []matchingBenchCell `json:"cells"`
}

type matchingBenchCell struct {
	D         int     `json:"d"`
	P         float64 `json:"p"`
	LoHW      int     `json:"lo_hw"`
	HiHW      int     `json:"hi_hw"`
	Syndromes int     `json:"syndromes"`
	DenseNs   float64 `json:"dense_ns_per_decode"`
	SparseNs  float64 `json:"sparse_ns_per_decode"`
	// Speedup = DenseNs / SparseNs: the factor by which the sparse engine
	// beats (>1) or trails (<1) the dense baseline on this cell.
	Speedup float64 `json:"speedup"`
}

// TestMatchingBenchArtifact keeps BENCH_matching.json honest: the committed
// file must parse against the schema, cover every served distance with the
// benchmark's own cell grid, record a clean cross-engine agreement run, and
// show the sparse engine winning the strata it actually wins (the smallest
// lattice, where region growth touches the whole graph anyway and the
// engine skips the dense formulation's per-pair table discipline). With
// ASTREA_WRITE_BENCH=1 the test regenerates the file instead.
func TestMatchingBenchArtifact(t *testing.T) {
	const path = "BENCH_matching.json"

	if os.Getenv("ASTREA_WRITE_BENCH") != "" {
		var bench matchingBench
		for _, c := range matchingCells {
			env, pool := matchingPool(t, c, 200)
			dense := mwpm.New(env.GWT)
			sparse := mwpm.NewWithEngine(env.GWT, sparsemwpm.New(env.Graph))

			// Cross-check every pooled syndrome before timing it.
			for _, s := range pool {
				a, b := dense.Decode(s), sparse.Decode(s)
				bench.AgreementShots++
				same := a.ObsPrediction == b.ObsPrediction &&
					math.Float64bits(a.Weight) == math.Float64bits(b.Weight) &&
					len(a.Pairs) == len(b.Pairs)
				if same {
					for i := range a.Pairs {
						if a.Pairs[i] != b.Pairs[i] {
							same = false
							break
						}
					}
				}
				if !same {
					bench.Mismatches++
				}
			}

			// Pick a repetition count putting each engine's timed section
			// near 100ms, then interleave whole passes so drift hits both.
			reps := 1
			if probe := timeDecodes(dense, pool, 1); probe > 0 {
				if r := int((100 * time.Millisecond).Seconds() / probe); r > reps {
					reps = r
				}
				if reps > 400 {
					reps = 400
				}
			}
			var denseSec, sparseSec float64
			for r := 0; r < reps; r++ {
				denseSec += timeDecodes(dense, pool, 1)
				sparseSec += timeDecodes(sparse, pool, 1)
			}
			n := float64(reps * len(pool))
			bench.Cells = append(bench.Cells, matchingBenchCell{
				D: c.D, P: c.P, LoHW: c.LoHW, HiHW: c.HiHW,
				Syndromes: len(pool),
				DenseNs:   denseSec * 1e9 / n,
				SparseNs:  sparseSec * 1e9 / n,
				Speedup:   denseSec / sparseSec,
			})
		}
		if bench.Mismatches != 0 {
			t.Fatalf("engines disagreed on %d of %d syndromes; artifact not written",
				bench.Mismatches, bench.AgreementShots)
		}
		out, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %s", path, out)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("committed benchmark artifact missing: %v (regenerate with ASTREA_WRITE_BENCH=1)", err)
	}
	var bench matchingBench
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("%s does not parse: %v", path, err)
	}
	if bench.Mismatches != 0 {
		t.Fatalf("%s records %d cross-engine mismatches; the engines must be bit-identical", path, bench.Mismatches)
	}
	if bench.AgreementShots < 20*len(matchingCells) {
		t.Fatalf("%s records only %d agreement shots across %d cells", path, bench.AgreementShots, len(matchingCells))
	}
	if len(bench.Cells) != len(matchingCells) {
		t.Fatalf("%s holds %d cells; the benchmark grid has %d — regenerate it", path, len(bench.Cells), len(matchingCells))
	}
	seen := map[int]bool{}
	for i, cell := range bench.Cells {
		want := matchingCells[i]
		if cell.D != want.D || cell.P != want.P || cell.LoHW != want.LoHW || cell.HiHW != want.HiHW {
			t.Fatalf("cell %d describes (d=%d p=%g hw %d-%d); the grid has (d=%d p=%g hw %d-%d) — regenerate",
				i, cell.D, cell.P, cell.LoHW, cell.HiHW, want.D, want.P, want.LoHW, want.HiHW)
		}
		if cell.DenseNs <= 0 || cell.SparseNs <= 0 || cell.Syndromes < 20 {
			t.Fatalf("degenerate cell %+v", cell)
		}
		if ratio := cell.DenseNs / cell.SparseNs; math.Abs(ratio-cell.Speedup)/cell.Speedup > 0.05 {
			t.Fatalf("cell %+v: recorded speedup inconsistent with its own latencies", cell)
		}
		seen[cell.D] = true
	}
	for _, d := range []int{3, 5, 7, 9} {
		if !seen[d] {
			t.Fatalf("%s covers no d=%d cell", path, d)
		}
	}
	// The honest headline both ways: the sparse engine must win every d=3
	// cell, and the committed file must admit the dense engine's table wins
	// at the largest served distance's heaviest stratum — if a regeneration
	// flips that, this assertion is the prompt to update the docs that
	// state it.
	for _, cell := range bench.Cells {
		if cell.D == 3 && cell.Speedup <= 1 {
			t.Fatalf("sparse engine lost a d=3 cell it is documented to win: %+v", cell)
		}
	}
	last := bench.Cells[len(bench.Cells)-1]
	if last.D != 9 || last.Speedup >= 1 {
		t.Fatalf("heaviest d=9 stratum no longer matches the documented story (%+v); update README/DESIGN", last)
	}
}

// timeDecodes runs reps passes of the pool through the decoder and returns
// the elapsed wall-clock seconds.
func timeDecodes(dec decoder.Decoder, pool []bitvec.Vec, reps int) float64 {
	start := time.Now()
	for r := 0; r < reps; r++ {
		for _, s := range pool {
			dec.Decode(s)
		}
	}
	return time.Since(start).Seconds()
}

module astrea

go 1.22

package astrea

import (
	"fmt"
	"testing"

	"astrea/internal/bitvec"
	"astrea/internal/decoder"
	"astrea/internal/dem"
	"astrea/internal/montecarlo"
	"astrea/internal/mwpm"
	"astrea/internal/prng"
	"astrea/internal/sparsemwpm"
)

// matchingCell is one (distance, error rate, Hamming-weight stratum) cell
// of the dense-vs-sparse exact-matching comparison. The cells cover every
// distance the repo's evaluation serves, restricted per distance to the
// strata its own error model actually populates.
type matchingCell struct {
	D    int
	P    float64
	LoHW int
	HiHW int
}

var matchingCells = []matchingCell{
	{3, 3e-3, 2, 4}, {3, 3e-3, 5, 8},
	{5, 3e-3, 2, 4}, {5, 3e-3, 5, 8}, {5, 3e-3, 9, 14},
	{7, 3e-3, 2, 4}, {7, 3e-3, 5, 8}, {7, 3e-3, 9, 14}, {7, 3e-3, 15, 24},
	{9, 3e-3, 5, 8}, {9, 3e-3, 9, 14}, {9, 3e-3, 15, 24}, {9, 3e-3, 25, 48},
}

func (c matchingCell) name() string {
	return fmt.Sprintf("d%d/hw%d-%d", c.D, c.LoHW, c.HiHW)
}

// matchingPool samples up to max syndromes from the cell's own error model
// whose Hamming weight falls inside the stratum, along with the shared
// environment the engines are built over.
func matchingPool(tb testing.TB, c matchingCell, max int) (*montecarlo.Env, []bitvec.Vec) {
	tb.Helper()
	env, err := montecarlo.SharedEnv(c.D, c.D, c.P)
	if err != nil {
		tb.Fatal(err)
	}
	smp := dem.NewSampler(env.Model)
	rng := prng.New(uint64(9000 + c.D*100 + c.LoHW))
	var pool []bitvec.Vec
	for shot := 0; shot < 400000 && len(pool) < max; shot++ {
		s := bitvec.New(env.Model.NumDetectors)
		smp.Sample(rng, s)
		if k := len(s.Ones(nil)); k >= c.LoHW && k <= c.HiHW {
			pool = append(pool, s)
		}
	}
	if len(pool) < 20 {
		tb.Fatalf("%s: only %d syndromes in the stratum; cell miscalibrated", c.name(), len(pool))
	}
	return env, pool
}

func benchMatchingEngine(b *testing.B, mk func(env *montecarlo.Env) decoder.Decoder) {
	for _, c := range matchingCells {
		b.Run(c.name(), func(b *testing.B) {
			env, pool := matchingPool(b, c, 200)
			dec := mk(env)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec.Decode(pool[i%len(pool)])
			}
		})
	}
}

// BenchmarkMatchingDense times the classic dense complete-graph blossom
// engine per (distance, HW stratum) cell; BenchmarkMatchingSparse times the
// sparse local-region engine on the same pools. BENCH_matching.json commits
// a head-to-head run of the same cells.
func BenchmarkMatchingDense(b *testing.B) {
	benchMatchingEngine(b, func(env *montecarlo.Env) decoder.Decoder {
		return mwpm.New(env.GWT)
	})
}

func BenchmarkMatchingSparse(b *testing.B) {
	benchMatchingEngine(b, func(env *montecarlo.Env) decoder.Decoder {
		return mwpm.NewWithEngine(env.GWT, sparsemwpm.New(env.Graph))
	})
}

// Package astrea is a from-scratch Go reproduction of "Astrea: Accurate
// Quantum Error-Decoding via Practical Minimum-Weight Perfect-Matching"
// (Vittal, Das, Qureshi — ISCA 2023).
//
// It bundles every system the paper builds on: a rotated-surface-code
// circuit generator, a Pauli-frame stabilizer simulator (the Stim
// replacement), detector-error-model extraction, the weighted decoding
// graph with its Global Weight Table, an exact blossom MWPM baseline, the
// Astrea and Astrea-G real-time decoders, and the Union-Find, LILLIPUT and
// Clique baselines — plus a Monte Carlo harness that regenerates every
// table and figure of the paper's evaluation.
//
// The quickest path through the API:
//
//	sys, _ := astrea.New(5, 1e-3)        // distance-5 code at p = 10⁻³
//	dec := sys.Astrea()                  // the paper's real-time decoder
//	src := sys.NewShotSource(42)         // reproducible noisy shots
//	syndrome, obs := src.Next()
//	res := dec.Decode(syndrome)
//	logicalError := res.ObsPrediction != obs
//
// For full experiments, see the internal/experiments package via the
// cmd/astrea binary, or use EstimateLER / EstimateLERStratified here.
package astrea

import (
	"fmt"

	"astrea/internal/artifact"
	"astrea/internal/astrea"
	"astrea/internal/astreag"
	"astrea/internal/bitvec"
	"astrea/internal/clique"
	"astrea/internal/cluster"
	"astrea/internal/compress"
	"astrea/internal/decodegraph"
	"astrea/internal/decoder"
	"astrea/internal/dem"
	"astrea/internal/experiments"
	"astrea/internal/hwmodel"
	"astrea/internal/lilliput"
	"astrea/internal/montecarlo"
	"astrea/internal/mwpm"
	"astrea/internal/prng"
	"astrea/internal/server"
	"astrea/internal/stream"
	"astrea/internal/surface"
	"astrea/internal/unionfind"
)

// Decoder is the interface every decoder implements; see Result for how
// decodes are scored.
type Decoder = decoder.Decoder

// Result is the outcome of decoding one syndrome.
type Result = decoder.Result

// Syndrome is a detector-event bit vector (one bit per detector).
type Syndrome = bitvec.Vec

// Budget scales experiment effort; see the presets QuickBudget,
// StandardBudget and FullBudget.
type Budget = experiments.Budget

// AstreaGConfig configures the Astrea-G pipeline (fetch width F, queue
// entries E, weight threshold W_th, cycle budget).
type AstreaGConfig = hwmodel.AstreaGConfig

// Stats aggregates a decoder's Monte Carlo results.
type Stats = montecarlo.DecoderStats

// Experiment budgets.
var (
	QuickBudget    = experiments.Quick
	StandardBudget = experiments.Standard
	FullBudget     = experiments.Full
)

// Boundary is the partner index used in Result.Pairs for boundary matches.
const Boundary = decoder.Boundary

// System is a fully built decoding stack for one operating point: the
// distance-d rotated surface code, its d-round memory-Z experiment circuit
// under the paper's noise model at physical error rate p, the extracted
// detector error model, and the Global Weight Table. Systems are immutable
// and safe to share; the decoders they mint are single-goroutine objects.
type System struct {
	env *montecarlo.Env
}

// New builds the decoding stack for a distance-d code (d odd, ≥ 3) at
// physical error rate p, using d syndrome rounds as the paper does.
func New(distance int, p float64) (*System, error) {
	env, err := montecarlo.SharedEnv(distance, distance, p)
	if err != nil {
		return nil, err
	}
	return &System{env: env}, nil
}

// Basis selects a memory experiment type for NewCustom.
type Basis = surface.Basis

// Memory experiment bases.
const (
	BasisZ = surface.BasisZ
	BasisX = surface.BasisX
)

// NoiseMap assigns per-qubit (and optionally per-round) error strengths;
// see the surface package for field semantics. Decoders built from a
// custom system use a Global Weight Table programmed from the map's true
// rates — the §8.2 reprogramming flow.
type NoiseMap = surface.NoiseMap

// NewCustom builds a decoding stack for an arbitrary memory experiment:
// either basis, any round count, and a (possibly non-uniform, possibly
// drifting) noise map. The reported physical error rate is nm.Base.
func NewCustom(distance, rounds int, basis Basis, nm NoiseMap) (*System, error) {
	code, err := surface.New(distance)
	if err != nil {
		return nil, err
	}
	cc, err := code.Memory(basis, rounds, nm)
	if err != nil {
		return nil, err
	}
	env, err := montecarlo.NewEnvFromCircuit(code, cc, rounds, nm.Base)
	if err != nil {
		return nil, err
	}
	env.Basis = basis
	return &System{env: env}, nil
}

// Artifact is a compiled operating point: the versioned, checksummed,
// deterministic binary bundle (".astc") holding everything a decoder pool
// needs — circuit metadata, the detector error model, the decoding graph
// and the Global Weight Table — so serving processes load it instead of
// re-running the expensive build pipeline. See internal/artifact for the
// format.
type Artifact = artifact.Artifact

// ArtifactMeta identifies the operating point an artifact was compiled for.
type ArtifactMeta = artifact.Meta

// Compile runs the full build pipeline for one operating point and returns
// the bundle, ready for WriteFile. Compiling the same inputs always
// produces byte-identical encodings.
func Compile(distance, rounds int, basis Basis, p float64) (*Artifact, error) {
	return artifact.Compile(distance, rounds, p, basis)
}

// ReadArtifact reads and fully validates a compiled .astc bundle.
func ReadArtifact(path string) (*Artifact, error) { return artifact.ReadFile(path) }

// SystemFromArtifact hydrates a decoding stack from a compiled artifact,
// skipping DEM extraction and the all-pairs Dijkstra: decoders minted from
// the loaded system are bit-identical to ones built by New at the same
// operating point.
func SystemFromArtifact(a *Artifact) (*System, error) {
	env, err := montecarlo.NewEnvFromArtifact(a)
	if err != nil {
		return nil, err
	}
	return &System{env: env}, nil
}

// LoadSystem reads an .astc file and hydrates the decoding stack it
// describes. This is the cheap path New avoids paying at every startup.
func LoadSystem(path string) (*System, error) {
	a, err := artifact.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return SystemFromArtifact(a)
}

// Artifact exports the system as a compiled bundle (see Compile); the
// bundle shares the system's immutable tables.
func (s *System) Artifact() (*Artifact, error) { return s.env.Artifact() }

// Fingerprint returns the system's decoding-configuration digest — what an
// astread serving this operating point advertises at handshake time.
func (s *System) Fingerprint() Fingerprint {
	return decodegraph.FingerprintOf(s.env.Model, s.env.GWT)
}

// Distance returns the code distance.
func (s *System) Distance() int { return s.env.Distance }

// PhysicalErrorRate returns the operating point's p.
func (s *System) PhysicalErrorRate() float64 { return s.env.P }

// NumDetectors returns the syndrome length (one bit per Z-type detector).
func (s *System) NumDetectors() int { return s.env.Model.NumDetectors }

// MWPM returns a software exact minimum-weight perfect-matching decoder —
// the paper's BlossomV baseline.
func (s *System) MWPM() Decoder { return mwpm.New(s.env.GWT) }

// Astrea returns the paper's exhaustive real-time decoder (§5): exact MWPM
// for syndromes of Hamming weight ≤ 10, with the 250 MHz FPGA cycle model.
func (s *System) Astrea() Decoder { return astrea.New(s.env.GWT) }

// AstreaG returns Astrea-G (§7) at the paper's default design point (F=2,
// E=8, W_th derived from the operating point, 1 µs budget).
func (s *System) AstreaG() (Decoder, error) {
	cfg := hwmodel.DefaultAstreaG(experiments.DefaultWth(s.env.Distance, s.env.P))
	return astreag.New(s.env.GWT, cfg)
}

// AstreaGWith returns Astrea-G with an explicit configuration.
func (s *System) AstreaGWith(cfg AstreaGConfig) (Decoder, error) {
	return astreag.New(s.env.GWT, cfg)
}

// UnionFind returns the Union-Find decoder; weighted=false is the AFS
// baseline configuration.
func (s *System) UnionFind(weighted bool) Decoder {
	return unionfind.New(s.env.Graph, weighted)
}

// Clique returns the hierarchical Clique+MWPM decoder.
func (s *System) Clique() Decoder { return clique.New(s.env.Graph, s.env.GWT) }

// Lilliput programs a LILLIPUT lookup table; it fails beyond distance 3,
// reproducing the paper's scalability wall (§5.6).
func (s *System) Lilliput() (Decoder, error) { return lilliput.Build(s.env.GWT, 0) }

// ShotSource produces reproducible noisy memory-experiment shots.
type ShotSource struct {
	rng *prng.Source
	smp *dem.Sampler
	buf Syndrome
}

// NewShotSource returns a deterministic shot stream for the given seed.
// Not safe for concurrent use.
func (s *System) NewShotSource(seed uint64) *ShotSource {
	return &ShotSource{
		rng: prng.New(seed),
		smp: dem.NewSampler(s.env.Model),
		buf: bitvec.New(s.env.Model.NumDetectors),
	}
}

// Next samples one shot: the syndrome (valid until the next call) and the
// true logical-observable flip mask a perfect decoder would predict.
func (src *ShotSource) Next() (Syndrome, uint64) {
	obs := src.smp.Sample(src.rng, src.buf)
	return src.buf, obs
}

// DecoderFactory builds one decoder per Monte Carlo worker.
type DecoderFactory func(*System) (Decoder, error)

// Named decoder factories for EstimateLER.
var (
	MWPMDecoder    DecoderFactory = func(s *System) (Decoder, error) { return s.MWPM(), nil }
	AstreaDecoder  DecoderFactory = func(s *System) (Decoder, error) { return s.Astrea(), nil }
	AstreaGDecoder DecoderFactory = func(s *System) (Decoder, error) { return s.AstreaG() }
	AFSDecoder     DecoderFactory = func(s *System) (Decoder, error) { return s.UnionFind(false), nil }
	CliqueDecoder  DecoderFactory = func(s *System) (Decoder, error) { return s.Clique(), nil }
)

func (s *System) wrap(fs []DecoderFactory) []montecarlo.Factory {
	out := make([]montecarlo.Factory, len(fs))
	for i, f := range fs {
		f := f
		out[i] = func(*montecarlo.Env) (decoder.Decoder, error) { return f(s) }
	}
	return out
}

// EstimateLER runs a direct Monte Carlo memory experiment with the given
// shot budget and returns per-decoder statistics (logical error rate,
// Wilson interval, hardware-latency aggregates).
func (s *System) EstimateLER(shots int64, seed uint64, factories ...DecoderFactory) ([]Stats, error) {
	res, err := montecarlo.Run(s.env, montecarlo.RunConfig{Shots: shots, Seed: seed}, s.wrap(factories)...)
	if err != nil {
		return nil, err
	}
	return res.Stats, nil
}

// EstimateLERStratified runs the paper's Appendix A.1 estimator (Equation
// 3): per-stratum failure probabilities with exactly k injected faults,
// combined with binomial occurrence weights. It reaches logical error rates
// far below what direct sampling can resolve. Returns one LER per factory.
func (s *System) EstimateLERStratified(maxK int, shotsPerK int64, seed uint64, factories ...DecoderFactory) ([]float64, error) {
	res, err := montecarlo.RunStratified(s.env, montecarlo.StratifiedConfig{
		MaxK: maxK, ShotsPerK: shotsPerK, Seed: seed,
	}, s.wrap(factories)...)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(factories))
	for i := range factories {
		out[i] = res.LER(i)
	}
	return out, nil
}

// LatencyNs converts a Result's cycle count to nanoseconds at the paper's
// 250 MHz FPGA clock.
func LatencyNs(r Result) float64 { return hwmodel.LatencyNs(r.Cycles) }

// DecodeServer is the networked syndrome-decoding service: a TCP daemon
// with per-distance decoder pools, a bounded batched request queue with
// backpressure, and per-request deadline accounting against the 1 µs
// real-time budget. See cmd/astread for the standalone binary.
type DecodeServer = server.Server

// DecodeServerConfig configures a DecodeServer.
type DecodeServerConfig = server.Config

// DecodeClient is one client stream to a DecodeServer; it negotiates a
// syndrome codec at handshake and can pipeline requests.
type DecodeClient = server.Client

// DecodeResponse is the unified reply to one decode request: a result, a
// backpressure rejection with a retry hint, or a per-request error.
type DecodeResponse = server.Response

// NewDecodeServer builds a decode service; call Serve or ListenAndServe to
// accept connections and Close to drain.
func NewDecodeServer(cfg DecodeServerConfig) (*DecodeServer, error) {
	return server.New(cfg)
}

// DialDecode connects a client stream to a running decode service for one
// code distance, negotiating the named syndrome codec ("dense", "sparse" or
// "rice").
func DialDecode(addr string, distance int, codecName string) (*DecodeClient, error) {
	id, err := compress.IDByName(codecName)
	if err != nil {
		return nil, err
	}
	return server.Dial(addr, distance, id)
}

// RetryingDecodeClient is the self-healing synchronous client: it dials
// lazily, reconnects after connection loss, and honours backpressure
// rejections with jittered, capped exponential backoff (raised to the
// server's retry-after hint). Not safe for concurrent use.
type RetryingDecodeClient = server.RetryingClient

// DialDecodeRetrying builds a RetryingDecodeClient with default timeouts
// and retry policy; no connection is made until the first Decode.
func DialDecodeRetrying(addr string, distance int, codecName string) (*RetryingDecodeClient, error) {
	id, err := compress.IDByName(codecName)
	if err != nil {
		return nil, err
	}
	return server.NewRetryingClient(addr, distance, id, server.ClientOptions{}, server.RetryPolicy{}), nil
}

// DecodeFleet is a replica-aware decode client: it pools connections to N
// astread endpoints, health-checks each one, fails over past dead or
// ejected replicas, optionally hedges slow requests, and quarantines any
// replica whose configuration fingerprint disagrees with the fleet's.
// Safe for concurrent use.
type DecodeFleet = cluster.Fleet

// DecodeFleetConfig parameterises a DecodeFleet (see cluster.Config).
type DecodeFleetConfig = cluster.Config

// ArtifactRotation describes one zero-downtime hot-swap of a running
// DecodeServer's decoder pool to a newly compiled artifact generation
// (DecodeServer.Rotate): in-flight requests and open streams finish on the
// old generation while new work lands on the new one.
type ArtifactRotation = server.Rotation

// FleetRolloutConfig parameterises DecodeFleet.StageRollout — a
// replica-by-replica artifact upgrade under live traffic, gated on each
// replica's own pre-rotation service quality and rolled back automatically
// on regression (ErrFleetRolloutRegression).
type FleetRolloutConfig = cluster.RolloutConfig

// FleetRolloutReport records each replica's gate windows and the rollout
// outcome.
type FleetRolloutReport = cluster.RolloutReport

// ErrFleetRolloutRegression marks a staged rollout that was rolled back
// because a rotated replica's quality regressed past the tolerance.
var ErrFleetRolloutRegression = cluster.ErrRolloutRegression

// Fingerprint is a stable digest of a server's decoding configuration
// (detector error model + quantised weight table). Two replicas with the
// same fingerprint produce interchangeable corrections.
type Fingerprint = decodegraph.Fingerprint

// ParseFingerprint parses the 16-hex-digit rendering a server prints at
// startup, for pinning via DecodeFleetConfig.ExpectedFingerprint.
func ParseFingerprint(s string) (Fingerprint, error) { return decodegraph.ParseFingerprint(s) }

// FingerprintFromArtifact reads a compiled .astc bundle and returns the
// digest to pin via DecodeFleetConfig.ExpectedFingerprint — the artifact
// shipped to the fleet is the source of truth, so the pin needs no dialing
// and no trust in whichever replica answers first.
func FingerprintFromArtifact(path string) (Fingerprint, error) {
	return cluster.FingerprintFromArtifact(path)
}

// DialDecodeFleet builds a DecodeFleet over the given replica addresses
// with defaults (failover across all replicas, hedging off, first
// replica's fingerprint adopted fleet-wide). Connections are dialed
// lazily, so a dead replica surfaces on first use, not here.
func DialDecodeFleet(addrs []string, distance int, codecName string) (*DecodeFleet, error) {
	id, err := compress.IDByName(codecName)
	if err != nil {
		return nil, err
	}
	return cluster.New(cluster.Config{Addrs: addrs, Distance: distance, CodecID: id})
}

// StreamConfig parameterises a windowed streaming decode pipeline; leave
// Env nil when building through System.NewStreamPipeline.
type StreamConfig = stream.Config

// StreamCommit is one committed window of a streaming decode: the
// correction for a contiguous run of syndrome rounds, emitted in round
// order with every round committed exactly once.
type StreamCommit = stream.Commit

// StreamStats snapshots a streaming pipeline's counters (rows, windows,
// forced cuts, deadline misses, cumulative correction).
type StreamStats = stream.Stats

// StreamPipeline decodes an unbounded syndrome-round stream by windowed
// MWPM: rows are pushed one syndrome round at a time, windows are cut at
// provably safe quiet gaps (or forced at a length cap and reconciled
// across the seam), decoded concurrently on pooled decoders, and fused
// back into in-order commits. On a closed stream the committed corrections
// are bit-identical to a whole-shot decode.
type StreamPipeline = stream.Pipeline

// NewStreamPipeline builds a streaming pipeline at this system's operating
// point (cfg.Env is overridden; zero-value cfg fields take defaults).
func (s *System) NewStreamPipeline(cfg StreamConfig) (*StreamPipeline, error) {
	cfg.Env = s.env
	return stream.New(cfg)
}

// DecodeClosedStream pushes a complete (closed) round stream through a
// windowed pipeline and returns the in-order commits — the convenience
// wrapper around StreamPipeline for finite streams.
func (s *System) DecodeClosedStream(cfg StreamConfig, rows []Syndrome) ([]StreamCommit, StreamStats, error) {
	cfg.Env = s.env
	return stream.DecodeClosed(cfg, rows)
}

// StreamRowWidth returns the detector bits per syndrome round — the width
// every row pushed into a StreamPipeline must have.
func (s *System) StreamRowWidth() int { return stream.RowWidth(s.env) }

// NewSyndrome allocates a zeroed detector bit vector of the given width.
// Whole-shot decoders take NumDetectors bits; streaming rows take
// StreamRowWidth bits.
func NewSyndrome(bits int) Syndrome { return bitvec.New(bits) }

// SplitRows slices a whole-shot syndrome into its per-round rows in time
// order — the form a StreamPipeline or DecodeStream consumes. The rows
// are fresh copies; mutating them leaves the shot intact.
func (s *System) SplitRows(shot Syndrome) ([]Syndrome, error) {
	width := s.StreamRowWidth()
	if shot.Len() != s.NumDetectors() {
		return nil, fmt.Errorf("astrea: shot has %d bits, operating point has %d detectors", shot.Len(), s.NumDetectors())
	}
	rows := make([]Syndrome, shot.Len()/width)
	for r := range rows {
		row := bitvec.New(width)
		for k := 0; k < width; k++ {
			if shot.Get(r*width + k) {
				row.Set(k)
			}
		}
		rows[r] = row
	}
	return rows, nil
}

// SafeGapRounds returns the smallest quiet-gap length at which cutting a
// streaming window is provably exact for this operating point.
func (s *System) SafeGapRounds() int { return stream.SafeGapRounds(s.env) }

// DecodeStream is one open windowed streaming session on a DecodeClient:
// rounds go up via SendRounds, commits come back via Recv, CloseSend
// finishes the stream and Recv's final event carries the summary.
type DecodeStream = server.Stream

// DecodeStreamOptions requests session window parameters (zero = server
// defaults; the server may clamp).
type DecodeStreamOptions = server.StreamOptions

// DecodeStreamEvent is one commit (or, with Closed set, the final summary)
// received from a streaming session.
type DecodeStreamEvent = server.StreamEvent

// DialDecodeStream connects to a decode service and opens a windowed
// streaming session on it: the handshake offers the streaming and checksum
// feature bits, so pre-streaming daemons refuse cleanly at dial time.
func DialDecodeStream(addr string, distance int, codecName string, opts DecodeStreamOptions) (*DecodeClient, *DecodeStream, error) {
	id, err := compress.IDByName(codecName)
	if err != nil {
		return nil, nil, err
	}
	client, err := server.DialOptions(addr, distance, id, server.ClientOptions{
		Features: server.FeatureStream | server.FeatureChecksum,
	})
	if err != nil {
		return nil, nil, err
	}
	st, err := client.OpenStream(opts)
	if err != nil {
		client.Close()
		return nil, nil, err
	}
	return client, st, nil
}

// ChainStep is one error mechanism of a physical correction chain.
type ChainStep = decodegraph.ChainStep

// CorrectionChains reconstructs the physical correction behind a decode
// result: for each matched pair, the most probable chain of error
// mechanisms (graph edges) connecting the two detectors — or a detector and
// the lattice boundary — whose reversal implements the correction (§2.2).
// Returns one chain per pair of r.Pairs; nil for table decoders that carry
// no explicit matching.
func (s *System) CorrectionChains(r Result) ([][]ChainStep, error) {
	if r.Pairs == nil {
		return nil, nil
	}
	out := make([][]ChainStep, 0, len(r.Pairs))
	for _, p := range r.Pairs {
		j := p[1]
		if j == Boundary {
			j = s.env.Graph.Boundary()
		}
		chain, err := s.env.Graph.ChainBetween(p[0], j)
		if err != nil {
			return nil, err
		}
		out = append(out, chain)
	}
	return out, nil
}

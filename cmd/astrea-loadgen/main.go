// Command astrea-loadgen drives an astread daemon with DEM-sampled
// syndromes at a configurable open-loop arrival rate and reports a
// Figure 3-style latency CDF plus achieved-vs-offered throughput — the
// paper's "can software MWPM keep up with one syndrome per µs?" experiment,
// re-measured end-to-end over a real network hop.
//
// Usage:
//
//	astrea-loadgen [flags]
//
// Flags:
//
//	-addr host:port   daemon address (default 127.0.0.1:7717)
//	-d N              code distance (default 5)
//	-p rate           physical error rate for the syndrome sampler (default 1e-3)
//	-codec name       dense | sparse | rice (default sparse)
//	-n N              syndromes to offer (default 10000)
//	-rate R           arrival rate per second; 0 = as fast as possible (default 0)
//	-deadline dur     per-request deadline; 0 = server default of 1µs (default 0)
//	-seed N           sampler seed (default 2023)
//	-verify           re-decode locally and count mismatches (default true)
//	-verify-decoder   local decoder for -verify (default astrea)
//	-chaos            route traffic through an in-process fault-injecting
//	                  proxy (latency spikes, corruption, short reads,
//	                  partial writes, disconnects) — a chaos smoke test
//	                  against a live daemon (default false)
//	-chaos-seed N     fault schedule seed for -chaos (default 1)
//
// Streaming mode (windowed decode over an open-ended round stream):
//
//	-stream           open a FeatureStream session and push syndrome ROUNDS
//	                  (not whole shots) open-loop, reporting windows/sec and
//	                  a commit-latency CDF; -n counts rounds, -rate paces
//	                  rounds per second (1e6 = the paper's 1 µs period)
//	-stream-batch N   rounds per wire frame (default 8)
//	-window N         requested window cap in rounds (0 = server default)
//	-gap N            requested quiet-gap cut length (0 = provably safe)
//	-pad N            requested seam padding in rounds (0 = server default)
//	-inflight N       requested concurrent window decodes (0 = default)
//
// Stream-resume mode (resilience measurement):
//
//	-stream-resume    like -stream, but through a resumable session whose
//	                  connection is severed at -stream-kills scheduled
//	                  points; reports reconnect count, replayed rounds and
//	                  a recovery-time CDF. The commit stream must still be
//	                  bit-identical to an uninterrupted run (-verify).
//	-stream-kills N   scheduled connection kills (default 3)
//
// Fleet mode (replicated daemons):
//
//	-servers a,b,c        comma-separated replica addresses; enables the
//	                      cluster client instead of the single-daemon path
//	-failover             re-send unanswered requests to the next healthy
//	                      replica (default true in fleet mode)
//	-hedge                race a second replica when the first is slow
//	-hedge-after dur      hedge trigger before RTT history warms up (default 2ms)
//	-call-timeout dur     per-attempt timeout, the failover trigger (default 250ms)
//	-workers N            concurrent decode workers in fleet mode (default 4)
//	-expect-fingerprint F pin the decoding-configuration digest (16 hex chars);
//	                      replicas advertising a different one are quarantined
//	-expect-fingerprint-artifact f  pin the digest carried by a compiled
//	                      .astc bundle (astrea compile) — fleet pinning from
//	                      the deployment's source of truth, no dialing needed
//
// Rotation chaos mode (fleet mode only):
//
//	-rotate f.astc        mid-run, stage a replica-by-replica rollout to this
//	                      compiled bundle under the live load: the bundle is
//	                      dropped into each replica's artifact watch directory
//	                      and the fleet's transition window plus regression
//	                      gate drive the swap; answers are verified against
//	                      the tables of whichever generation signed them, so
//	                      -verify spans the rotation. A regression rolls the
//	                      fleet back automatically and the run exits non-zero.
//	-rotate-dirs a,b,c    each replica's -artifact-dir, parallel to -servers
//	-rotate-after frac    fraction of shots offered before the rollout starts
//	                      (default 0.5)
//	-rotate-confirm dur   per-step rollout wait bound; must exceed the
//	                      daemons' -artifact-watch interval (default 30s)
//
// Exit status is non-zero if any verified response disagrees with the
// local decoder (degraded responses are checked against Union-Find, the
// server's degradation fallback).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"astrea/internal/cluster"
	"astrea/internal/compress"
	"astrea/internal/decodegraph"
	"astrea/internal/faultinject"
	"astrea/internal/report"
	"astrea/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "astrea-loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("astrea-loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7717", "daemon address")
	d := fs.Int("d", 5, "code distance")
	p := fs.Float64("p", 1e-3, "physical error rate")
	codecName := fs.String("codec", "sparse", "syndrome codec: dense, sparse or rice")
	n := fs.Int("n", 10_000, "syndromes to offer")
	rate := fs.Float64("rate", 0, "arrival rate per second (0 = unpaced)")
	deadline := fs.Duration("deadline", 0, "per-request deadline (0 = server default)")
	seed := fs.Uint64("seed", 2023, "sampler seed")
	verify := fs.Bool("verify", true, "re-decode locally and count mismatches")
	verifyDecoder := fs.String("verify-decoder", "astrea", "local decoder for -verify")
	chaos := fs.Bool("chaos", false, "route traffic through a fault-injecting proxy")
	chaosSeed := fs.Uint64("chaos-seed", 1, "fault schedule seed for -chaos")
	streamMode := fs.Bool("stream", false, "streaming mode: push syndrome rounds through a windowed session")
	streamBatch := fs.Int("stream-batch", 8, "streaming mode: rounds per wire frame")
	windowRounds := fs.Int("window", 0, "streaming mode: requested window cap in rounds (0 = server default)")
	gapRounds := fs.Int("gap", 0, "streaming mode: requested quiet-gap cut length (0 = provably safe)")
	padRounds := fs.Int("pad", 0, "streaming mode: requested seam padding in rounds (0 = server default)")
	inflight := fs.Int("inflight", 0, "streaming mode: requested concurrent window decodes (0 = default)")
	streamResume := fs.Bool("stream-resume", false, "resilience mode: resumable session with scheduled connection kills")
	streamKills := fs.Int("stream-kills", 3, "stream-resume mode: scheduled connection kills")
	servers := fs.String("servers", "", "comma-separated replica addresses (fleet mode)")
	failover := fs.Bool("failover", true, "fleet mode: re-send unanswered requests to the next healthy replica")
	hedge := fs.Bool("hedge", false, "fleet mode: race a second replica when the first is slow")
	hedgeAfter := fs.Duration("hedge-after", 2*time.Millisecond, "fleet mode: hedge trigger before RTT history warms up")
	callTimeout := fs.Duration("call-timeout", 250*time.Millisecond, "fleet mode: per-attempt timeout (the failover trigger)")
	workers := fs.Int("workers", 4, "fleet mode: concurrent decode workers")
	expectFP := fs.String("expect-fingerprint", "", "fleet mode: pin the decoding-configuration digest (16 hex chars)")
	expectFPArtifact := fs.String("expect-fingerprint-artifact", "", "fleet mode: pin the digest carried by a compiled .astc bundle")
	rotate := fs.String("rotate", "", "fleet mode: stage a mid-run rollout to this compiled .astc bundle")
	rotateDirs := fs.String("rotate-dirs", "", "rotation mode: each replica's artifact watch directory, parallel to -servers")
	rotateAfter := fs.Float64("rotate-after", 0.5, "rotation mode: fraction of shots offered before the rollout starts")
	rotateConfirm := fs.Duration("rotate-confirm", 30*time.Second, "rotation mode: per-step rollout wait bound")
	if err := fs.Parse(args); err != nil {
		return err
	}
	codecID, err := compress.IDByName(*codecName)
	if err != nil {
		return err
	}

	if *servers != "" {
		if *chaos {
			return fmt.Errorf("-chaos applies to the single-daemon path; fleet mode injects faults server-side")
		}
		if *streamMode || *streamResume {
			return fmt.Errorf("-stream/-stream-resume apply to the single-daemon path; a windowed session pins one connection")
		}
		var fp decodegraph.Fingerprint
		switch {
		case *expectFP != "" && *expectFPArtifact != "":
			return fmt.Errorf("-expect-fingerprint and -expect-fingerprint-artifact are mutually exclusive")
		case *expectFP != "":
			if fp, err = decodegraph.ParseFingerprint(*expectFP); err != nil {
				return err
			}
		case *expectFPArtifact != "":
			if fp, err = cluster.FingerprintFromArtifact(*expectFPArtifact); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "astrea-loadgen: pinning fingerprint %s from %s\n", fp, *expectFPArtifact)
		}
		addrs := strings.Split(*servers, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		var dirs []string
		if *rotate != "" {
			if *rotateDirs == "" {
				return fmt.Errorf("-rotate needs -rotate-dirs (one watch directory per replica)")
			}
			dirs = strings.Split(*rotateDirs, ",")
			for i := range dirs {
				dirs[i] = strings.TrimSpace(dirs[i])
			}
			if len(dirs) != len(addrs) {
				return fmt.Errorf("-rotate-dirs lists %d directories for %d replicas", len(dirs), len(addrs))
			}
		}
		cfg := cluster.LoadConfig{
			Addrs:                addrs,
			Distance:             *d,
			P:                    *p,
			Codec:                codecID,
			Shots:                *n,
			Concurrency:          *workers,
			RatePerSec:           *rate,
			DeadlineNs:           uint64(deadline.Nanoseconds()),
			Seed:                 *seed,
			Verify:               *verify,
			VerifyDecoder:        *verifyDecoder,
			Failover:             *failover,
			Hedge:                *hedge,
			HedgeAfter:           *hedgeAfter,
			CallTimeout:          *callTimeout,
			ExpectedFingerprint:  fp,
			RotateArtifact:       *rotate,
			RotateDirs:           dirs,
			RotateAfterFrac:      *rotateAfter,
			RotateConfirmTimeout: *rotateConfirm,
		}
		fmt.Fprintf(os.Stderr, "astrea-loadgen: offering %d d=%d syndromes across %d replicas (codec=%s, rate=%s, failover=%v, hedge=%v)\n",
			*n, *d, len(addrs), *codecName, rateLabel(*rate), *failover, *hedge)
		rep, err := cluster.RunLoad(cfg)
		if err != nil {
			return err
		}
		return renderFleet(rep, cfg)
	}

	target := *addr
	if *chaos {
		proxy, err := faultinject.NewProxy(*addr, faultinject.Config{
			Seed:       *chaosSeed,
			StallP:     0.02,
			StallMin:   100 * time.Microsecond,
			StallMax:   2 * time.Millisecond,
			CorruptP:   0.005,
			DropP:      0.002,
			PartialP:   0.005,
			ShortReadP: 0.05,
		})
		if err != nil {
			return err
		}
		defer proxy.Close()
		target = proxy.Addr()
		fmt.Fprintf(os.Stderr, "astrea-loadgen: chaos proxy on %s (seed=%d)\n", target, *chaosSeed)
	}

	if *streamResume {
		if *chaos {
			return fmt.Errorf("-chaos and -stream-resume are mutually exclusive; resume mode interposes its own connection-killing proxy")
		}
		rcfg := server.StreamResumeLoadConfig{
			Addr:       target,
			Distance:   *d,
			P:          *p,
			Codec:      codecID,
			Rounds:     *n,
			RatePerSec: *rate,
			Batch:      *streamBatch,
			Window: server.StreamOptions{
				WindowRounds: *windowRounds,
				GapRounds:    *gapRounds,
				PadRounds:    *padRounds,
				RowBudgetNs:  uint32(deadline.Nanoseconds()),
				MaxInflight:  *inflight,
			},
			Seed:          *seed,
			Kills:         *streamKills,
			Verify:        *verify,
			VerifyDecoder: *verifyDecoder,
		}
		fmt.Fprintf(os.Stderr, "astrea-loadgen: streaming %d d=%d rounds to %s with %d scheduled connection kills (codec=%s, rate=%s, batch=%d)\n",
			*n, *d, *addr, *streamKills, *codecName, rateLabel(*rate), *streamBatch)
		rep, err := server.RunStreamResumeLoad(rcfg)
		if err != nil {
			return err
		}
		return renderStreamResume(rep, rcfg)
	}

	if *streamMode {
		scfg := server.StreamLoadConfig{
			Addr:       target,
			Distance:   *d,
			P:          *p,
			Codec:      codecID,
			Rounds:     *n,
			RatePerSec: *rate,
			Batch:      *streamBatch,
			Window: server.StreamOptions{
				WindowRounds: *windowRounds,
				GapRounds:    *gapRounds,
				PadRounds:    *padRounds,
				RowBudgetNs:  uint32(deadline.Nanoseconds()),
				MaxInflight:  *inflight,
			},
			Seed:          *seed,
			Verify:        *verify,
			VerifyDecoder: *verifyDecoder,
		}
		fmt.Fprintf(os.Stderr, "astrea-loadgen: streaming %d d=%d rounds to %s (codec=%s, rate=%s, batch=%d)\n",
			*n, *d, *addr, *codecName, rateLabel(*rate), *streamBatch)
		rep, err := server.RunStreamLoad(scfg)
		if err != nil {
			if !*chaos {
				return err
			}
			// Under -chaos a severed session IS the injected fault; the smoke
			// test is whether the daemon survived and still serves clean
			// streams. Probe with a short fault-free session.
			fmt.Fprintf(os.Stderr, "astrea-loadgen: chaos severed the session (%v); probing the daemon directly\n", err)
			probe := scfg
			probe.Addr = *addr
			probe.Rounds = 2000
			probe.RatePerSec = 0
			if rep, err = server.RunStreamLoad(probe); err != nil {
				return fmt.Errorf("daemon did not survive the chaos run: %w", err)
			}
			fmt.Fprintln(os.Stderr, "astrea-loadgen: daemon survived; reporting the post-chaos probe")
			scfg = probe
		}
		return renderStream(rep, scfg)
	}

	cfg := server.LoadConfig{
		Addr:          target,
		Distance:      *d,
		P:             *p,
		Codec:         codecID,
		Shots:         *n,
		RatePerSec:    *rate,
		DeadlineNs:    uint64(deadline.Nanoseconds()),
		Seed:          *seed,
		Verify:        *verify,
		VerifyDecoder: *verifyDecoder,
	}
	fmt.Fprintf(os.Stderr, "astrea-loadgen: offering %d d=%d syndromes to %s (codec=%s, rate=%s)\n",
		*n, *d, *addr, *codecName, rateLabel(*rate))
	rep, err := server.RunLoad(cfg)
	if err != nil {
		if !*chaos {
			return err
		}
		// Under -chaos a severed stream IS the injected fault, not a failed
		// run; the smoke-test question is whether the daemon survived it.
		// Probe it with a short fault-free run straight at the real address.
		fmt.Fprintf(os.Stderr, "astrea-loadgen: chaos severed the stream (%v); probing the daemon directly\n", err)
		probe := cfg
		probe.Addr = *addr
		probe.Shots = 100
		probe.RatePerSec = 0
		if rep, err = server.RunLoad(probe); err != nil {
			return fmt.Errorf("daemon did not survive the chaos run: %w", err)
		}
		fmt.Fprintln(os.Stderr, "astrea-loadgen: daemon survived; reporting the post-chaos probe")
		cfg = probe
	}
	return render(rep, cfg)
}

func rateLabel(rate float64) string {
	if rate <= 0 {
		return "unpaced"
	}
	return fmt.Sprintf("%g/s", rate)
}

func render(rep *server.LoadReport, cfg server.LoadConfig) error {
	out := os.Stdout
	budget := float64(cfg.DeadlineNs)
	if budget == 0 {
		budget = 1000 // server default: the 1 µs window
	}

	t := report.Table{
		Title:   "astread load report",
		Headers: []string{"metric", "value"},
	}
	t.AddRow("offered", rep.Offered)
	t.AddRow("accepted", rep.Accepted)
	t.AddRow("rejected (backpressure)", rep.Rejected)
	t.AddRow("errored", rep.Errored)
	t.AddRow("degraded (UF fallback)", rep.Degraded)
	t.AddRow("offered/s", rep.OfferedPerSec)
	t.AddRow("achieved/s", rep.AchievedPerSec)
	t.AddRow("deadline misses (server)", fmt.Sprintf("%d (%.2f%% of accepted)",
		rep.DeadlineMisses, 100*missRate(rep)))
	if rep.Rejected > 0 {
		t.AddRow("max retry-after", time.Duration(rep.MaxRetryAfterNs).String())
	}
	if cfg.Verify {
		t.AddRow("verified mismatches", rep.Mismatches)
		t.AddRow("verify engine", rep.VerifyEngine)
	}
	if rep.OtherGeneration > 0 {
		t.AddRow("other-generation answers (unverified)", rep.OtherGeneration)
	}
	if err := t.Write(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	if rep.OtherGeneration > 0 {
		fmt.Fprintf(out, "note: the daemon rotated artifacts mid-run; %d answers came from a\n"+
			"generation this generator holds no tables for and were not verified.\n\n", rep.OtherGeneration)
	}

	if err := report.CDF(out, "client round-trip latency", rep.RTTNs, budget); err != nil {
		return err
	}
	fmt.Fprintln(out)
	if err := report.CDF(out, "server-side sojourn (arrival→decode)", rep.ServerSojournNs, budget); err != nil {
		return err
	}
	if rep.Mismatches > 0 {
		return fmt.Errorf("%d responses disagree with the local %s decoder", rep.Mismatches, cfg.VerifyDecoder)
	}
	return nil
}

func renderStream(rep *server.StreamLoadReport, cfg server.StreamLoadConfig) error {
	out := os.Stdout

	t := report.Table{
		Title:   "astread streaming load report",
		Headers: []string{"metric", "value"},
	}
	t.AddRow("rounds streamed", rep.Rounds)
	t.AddRow("windows committed", rep.Windows)
	t.AddRow("forced cuts", rep.ForcedCuts)
	t.AddRow("degraded (fallback decode)", rep.Degraded)
	t.AddRow("rounds/s", rep.RoundsPerSec)
	t.AddRow("windows/s", rep.WindowsPerSec)
	t.AddRow("window cap / gap / pad", fmt.Sprintf("%d / %d / %d rounds",
		rep.Resolved.WindowRounds, rep.Resolved.GapRounds, rep.Resolved.PadRounds))
	t.AddRow("row budget", time.Duration(rep.Resolved.RowBudgetNs).String())
	t.AddRow("deadline misses (server)", fmt.Sprintf("%d (%.2f%% of commits)",
		rep.DeadlineMisses, 100*float64(rep.DeadlineMisses)/float64(max(rep.Windows, 1))))
	t.AddRow("cumulative correction", fmt.Sprintf("%#x", rep.ObsMask))
	if cfg.Verify {
		t.AddRow("verified mismatches", rep.Mismatches)
	}
	if err := t.Write(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	// The commit-latency budget scales with the window height: a window of
	// R rounds is on time within R × RowBudgetNs of its cut.
	budget := float64(rep.Resolved.RowBudgetNs) * float64(rep.Resolved.WindowRounds)
	if err := report.CDF(out, "commit latency (last round sent → commit received)", rep.CommitLatencyNs, budget); err != nil {
		return err
	}
	fmt.Fprintln(out)
	if err := report.CDF(out, "server-side commit sojourn (cut → commit)", rep.ServerSojournNs, budget); err != nil {
		return err
	}
	if rep.Mismatches > 0 {
		return fmt.Errorf("%d commits disagree with the local windowed decode", rep.Mismatches)
	}
	return nil
}

func renderFleet(rep *cluster.LoadReport, cfg cluster.LoadConfig) error {
	out := os.Stdout
	budget := float64(cfg.DeadlineNs)
	if budget == 0 {
		budget = 1000 // server default: the 1 µs window
	}

	t := report.Table{
		Title:   "astread fleet load report",
		Headers: []string{"metric", "value"},
	}
	t.AddRow("offered", rep.Offered)
	t.AddRow("answered", rep.Answered)
	t.AddRow("rejected (all replicas shed)", rep.Rejected)
	t.AddRow("errored (server error)", rep.Errored)
	t.AddRow("failed (no replica answered)", rep.Failed)
	t.AddRow("degraded (UF fallback)", rep.Degraded)
	t.AddRow("achieved/s", rep.AchievedPerSec)
	if cfg.Verify {
		t.AddRow("verified mismatches", rep.Mismatches)
	}
	if err := t.Write(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	// Per-replica traffic split: how failover, hedging and the breaker
	// actually distributed the load.
	rt := report.Table{
		Title:   "replica traffic split",
		Headers: []string{"replica", "state", "req", "ok", "fail", "rej", "hedge", "probes ok/total"},
	}
	for _, rs := range rep.Replicas {
		rt.AddRow(rs.Addr, rs.State, rs.Requests, rs.Successes, rs.Failures, rs.Rejections,
			rs.Hedges, fmt.Sprintf("%d/%d", rs.Probes-rs.ProbeFailures, rs.Probes))
	}
	if err := rt.Write(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	if rep.Rotation != nil {
		st := report.Table{
			Title:   "staged rollout",
			Headers: []string{"replica", "outcome", "baseline ok/deg/miss", "post ok/deg/miss"},
		}
		for _, step := range rep.Rotation.Steps {
			outcome := "passed"
			if step.RolledBack {
				outcome = "ROLLED BACK: " + step.Reason
			}
			st.AddRow(step.Addr, outcome,
				fmt.Sprintf("%d/%d/%d", step.Baseline.Successes, step.Baseline.Degraded, step.Baseline.DeadlineMisses),
				fmt.Sprintf("%d/%d/%d", step.Post.Successes, step.Post.Degraded, step.Post.DeadlineMisses))
		}
		if err := st.Write(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if err := report.CDF(out, "fleet round-trip latency (incl. failover/hedge)", rep.RTTNs, budget); err != nil {
		return err
	}
	if rep.Mismatches > 0 {
		return fmt.Errorf("%d responses disagree with the local decoder", rep.Mismatches)
	}
	if rep.Failed > 0 {
		return fmt.Errorf("%d requests exhausted every replica", rep.Failed)
	}
	if rep.RotationErr != "" {
		return fmt.Errorf("staged rollout failed: %s", rep.RotationErr)
	}
	if cfg.RotateArtifact != "" && (rep.Rotation == nil || !rep.Rotation.Completed) {
		return fmt.Errorf("staged rollout never completed")
	}
	return nil
}

func missRate(rep *server.LoadReport) float64 {
	if rep.Accepted == 0 {
		return 0
	}
	return float64(rep.DeadlineMisses) / float64(rep.Accepted)
}

func renderStreamResume(rep *server.StreamResumeLoadReport, cfg server.StreamResumeLoadConfig) error {
	out := os.Stdout

	t := report.Table{
		Title:   "astread stream-resume resilience report",
		Headers: []string{"metric", "value"},
	}
	t.AddRow("rounds streamed", rep.Rounds)
	t.AddRow("windows committed", rep.Windows)
	t.AddRow("forced cuts", rep.ForcedCuts)
	t.AddRow("connection kills landed", rep.Kills)
	t.AddRow("reconnects", rep.Reconnects)
	t.AddRow("rounds replayed", rep.ReplayedRounds)
	t.AddRow("rounds/s", rep.RoundsPerSec)
	t.AddRow("windows/s", rep.WindowsPerSec)
	t.AddRow("window cap / gap / pad", fmt.Sprintf("%d / %d / %d rounds",
		rep.Resolved.WindowRounds, rep.Resolved.GapRounds, rep.Resolved.PadRounds))
	t.AddRow("cumulative correction", fmt.Sprintf("%#x", rep.ObsMask))
	if cfg.Verify {
		t.AddRow("verified mismatches", rep.Mismatches)
	}
	if err := t.Write(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	if err := report.CDF(out, "recovery time (connection death → session re-established)", rep.RecoveryNs, 0); err != nil {
		return err
	}
	if rep.Mismatches > 0 {
		return fmt.Errorf("%d commits disagree with the local %s decoder — resume broke bit-identity", rep.Mismatches, cfg.VerifyDecoder)
	}
	return nil
}

// astrea-vet is the repo-specific static-analysis pass: it walks the
// module's packages and enforces the invariants the decode pipeline's
// correctness rests on (see internal/lint). Exit status is non-zero on
// any finding, so CI can gate on it.
//
// Usage:
//
//	astrea-vet [./...]
//	astrea-vet ./internal/server ./internal/artifact
//
// With no arguments (or "./..."), the whole module containing the
// current directory is analyzed. Findings print one per line as
//
//	file:line:col: [analyzer] message
//
// A finding is suppressed only by an inline
// "//lint:allow <analyzer> <reason>" comment on the flagged line or the
// line above it; unused or reason-less allow comments are findings too.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"astrea/internal/lint"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "astrea-vet:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		return err
	}
	loader := lint.NewLoader()
	var pkgs []*lint.Package
	if whole(args) {
		pkgs, err = loader.LoadModule(root)
		if err != nil {
			return err
		}
	} else {
		for _, arg := range args {
			pkg, err := loadArg(loader, root, arg)
			if err != nil {
				return err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	findings := 0
	for _, pkg := range pkgs {
		for _, d := range lint.Apply(pkg, lint.Analyzers) {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "astrea-vet: %d finding(s) in %d package(s)\n", findings, len(pkgs))
		os.Exit(1)
	}
	return nil
}

// whole reports whether the argument list means "the entire module".
func whole(args []string) bool {
	if len(args) == 0 {
		return true
	}
	return len(args) == 1 && (args[0] == "./..." || args[0] == "...")
}

// loadArg loads one explicit package directory argument.
func loadArg(loader *lint.Loader, root, arg string) (*lint.Package, error) {
	dir, err := filepath.Abs(arg)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("package %s is outside the module at %s", arg, root)
	}
	rel = filepath.ToSlash(rel)
	modPath, err := lint.ModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + rel
	}
	pkg, err := loader.LoadDir(dir, path, rel)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		// Skipping silently here would let a typo'd CI argument gate on
		// nothing and report success.
		return nil, fmt.Errorf("%s contains no Go files; pass a package directory (e.g. ./internal/server) or ./... for the whole module", arg)
	}
	return pkg, nil
}

package main

import (
	"strings"
	"testing"
)

// TestRunNoGoFiles pins the argument-validation contract: a directory that
// exists but holds no Go files is an error with a usage hint, not a silent
// success. (A typo'd CI argument used to gate on nothing and exit 0.)
func TestRunNoGoFiles(t *testing.T) {
	err := run([]string{"testdata/nogo"})
	if err == nil {
		t.Fatal("run on a directory with no Go files succeeded; want an error")
	}
	if !strings.Contains(err.Error(), "no Go files") {
		t.Errorf("error does not name the problem: %v", err)
	}
	if !strings.Contains(err.Error(), "./...") {
		t.Errorf("error carries no usage hint: %v", err)
	}
}

// TestRunMissingDir keeps nonexistent paths an error too.
func TestRunMissingDir(t *testing.T) {
	if err := run([]string{"./no-such-dir"}); err == nil {
		t.Fatal("run on a nonexistent directory succeeded; want an error")
	}
}

// TestRunOutsideModule keeps out-of-module paths an error.
func TestRunOutsideModule(t *testing.T) {
	err := run([]string{"/"})
	if err == nil {
		t.Fatal("run on a path outside the module succeeded; want an error")
	}
	if !strings.Contains(err.Error(), "outside the module") {
		t.Errorf("error does not name the problem: %v", err)
	}
}

// TestRunSelf runs the real pass over this package: explicit-directory
// loading end to end, and cmd/astrea-vet stays clean under its own
// analyzers.
func TestRunSelf(t *testing.T) {
	if err := run([]string{"."}); err != nil {
		t.Fatalf("run on cmd/astrea-vet: %v", err)
	}
}

// Command astread is the syndrome-decoding daemon: it serves the wire
// protocol of internal/server over TCP, decoding DEM syndromes with
// per-distance decoder pools, a bounded batched queue with backpressure,
// and per-request deadline accounting against the paper's 1 µs real-time
// budget.
//
// Usage:
//
//	astread [flags]
//
// Flags:
//
//	-listen addr      TCP decode endpoint (default :7717)
//	-http addr        stats endpoint, /stats + expvar /debug/vars (default :7718, "" disables)
//	-distances list   comma-separated code distances to serve (default 3,5,7)
//	-p rate           physical error rate the GWTs are programmed for (default 1e-3)
//	-decoder name     astrea | astrea-g | mwpm | uf | uf-unweighted (default astrea)
//	-queue N          request queue bound; overflow is rejected (default 1024)
//	-batch N          max requests per worker wake-up (default 16)
//	-workers N        decode workers (default GOMAXPROCS)
//	-deadline dur     default per-request deadline (default 1µs)
//
// The daemon runs until SIGINT/SIGTERM, then drains and prints a final
// stats snapshot.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"astrea/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "astread:", err)
		os.Exit(1)
	}
}

// buildConfig parses flags into a server configuration plus the listen
// addresses; split out for testing.
func buildConfig(args []string) (cfg server.Config, listen, httpAddr string, err error) {
	fs := flag.NewFlagSet("astread", flag.ContinueOnError)
	fs.StringVar(&listen, "listen", ":7717", "TCP decode endpoint")
	fs.StringVar(&httpAddr, "http", ":7718", "stats endpoint (empty disables)")
	distances := fs.String("distances", "3,5,7", "comma-separated code distances")
	p := fs.Float64("p", 1e-3, "physical error rate")
	fs.StringVar(&cfg.Decoder, "decoder", "astrea", "decoder: astrea, astrea-g, mwpm, uf or uf-unweighted")
	fs.IntVar(&cfg.QueueDepth, "queue", 1024, "request queue bound")
	fs.IntVar(&cfg.BatchSize, "batch", 16, "max requests per worker wake-up")
	fs.IntVar(&cfg.Workers, "workers", 0, "decode workers (0 = GOMAXPROCS)")
	deadline := fs.Duration("deadline", time.Microsecond, "default per-request deadline")
	if err = fs.Parse(args); err != nil {
		return cfg, "", "", err
	}
	cfg.P = *p
	cfg.DefaultDeadlineNs = uint64(deadline.Nanoseconds())
	for _, part := range strings.Split(*distances, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, convErr := strconv.Atoi(part)
		if convErr != nil {
			return cfg, "", "", fmt.Errorf("bad distance %q: %w", part, convErr)
		}
		cfg.Distances = append(cfg.Distances, d)
	}
	return cfg, listen, httpAddr, nil
}

func run(args []string) error {
	cfg, listen, httpAddr, err := buildConfig(args)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "astread: building decoder pools (decoder=%s, distances=%v, p=%g)...\n",
		cfg.Decoder, cfg.Distances, cfg.P)
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}

	if httpAddr != "" {
		expvar.Publish("astread", expvar.Func(func() interface{} { return srv.Snapshot() }))
		mux := http.NewServeMux()
		mux.Handle("/stats", srv.StatsHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		go func() {
			if err := http.ListenAndServe(httpAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "astread: stats endpoint:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "astread: stats on http://%s/stats\n", httpAddr)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(listen) }()
	fmt.Fprintf(os.Stderr, "astread: decoding on %s\n", listen)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "astread: %v, draining\n", s)
	}
	if err := srv.Close(); err != nil {
		return err
	}
	out, err := json.MarshalIndent(srv.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

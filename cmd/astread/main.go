// Command astread is the syndrome-decoding daemon: it serves the wire
// protocol of internal/server over TCP, decoding DEM syndromes with
// per-distance decoder pools, a bounded batched queue with backpressure,
// and per-request deadline accounting against the paper's 1 µs real-time
// budget.
//
// Usage:
//
//	astread [flags]
//
// Flags:
//
//	-listen addr      TCP decode endpoint (default :7717)
//	-http addr        stats endpoint, /stats + expvar /debug/vars (default :7718, "" disables)
//	-distances list   comma-separated code distances to serve (default 3,5,7)
//	-p rate           physical error rate the GWTs are programmed for (default 1e-3)
//	-decoder name     astrea | astrea-g | mwpm | uf | uf-unweighted (default astrea)
//	-queue N          request queue bound; overflow is rejected (default 1024)
//	-batch N          max requests per worker wake-up (default 16)
//	-workers N        decode workers (default GOMAXPROCS)
//	-deadline dur     default per-request deadline (default 1µs)
//	-max-conns N      concurrent connection cap; excess refused (default 4096, 0 = unlimited)
//	-handshake-timeout dur  Hello exchange bound per connection (default 10s, 0 disables)
//	-idle-timeout dur       reap connections idle this long (default 5m, 0 disables)
//	-write-timeout dur      per-response write bound (default 30s, 0 disables)
//	-degrade frac     fraction of the deadline budget the queue sojourn may
//	                  consume before decoding with the fast Union-Find
//	                  fallback (FlagDegraded) (default 0.75, 0 disables)
//	-drain-timeout dur      SIGTERM drain bound; requests still queued when it
//	                  expires are abandoned and counted (default 10s, 0 = unbounded)
//
// The daemon runs until SIGINT/SIGTERM, then drains (bounded by
// -drain-timeout) and prints a final stats snapshot.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"astrea/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "astread:", err)
		os.Exit(1)
	}
}

// buildConfig parses flags into a server configuration plus the listen
// addresses and drain bound; split out for testing. Flags use 0 to mean
// "disabled/unlimited", mapped onto the Config convention where zero means
// default and negative means disabled.
func buildConfig(args []string) (cfg server.Config, listen, httpAddr string, drain time.Duration, err error) {
	fs := flag.NewFlagSet("astread", flag.ContinueOnError)
	fs.StringVar(&listen, "listen", ":7717", "TCP decode endpoint")
	fs.StringVar(&httpAddr, "http", ":7718", "stats endpoint (empty disables)")
	distances := fs.String("distances", "3,5,7", "comma-separated code distances")
	p := fs.Float64("p", 1e-3, "physical error rate")
	fs.StringVar(&cfg.Decoder, "decoder", "astrea", "decoder: astrea, astrea-g, mwpm, uf or uf-unweighted")
	fs.IntVar(&cfg.QueueDepth, "queue", 1024, "request queue bound")
	fs.IntVar(&cfg.BatchSize, "batch", 16, "max requests per worker wake-up")
	fs.IntVar(&cfg.Workers, "workers", 0, "decode workers (0 = GOMAXPROCS)")
	deadline := fs.Duration("deadline", time.Microsecond, "default per-request deadline")
	maxConns := fs.Int("max-conns", 4096, "concurrent connection cap (0 = unlimited)")
	handshakeTO := fs.Duration("handshake-timeout", 10*time.Second, "handshake bound per connection (0 disables)")
	idleTO := fs.Duration("idle-timeout", 5*time.Minute, "reap connections idle this long (0 disables)")
	writeTO := fs.Duration("write-timeout", 30*time.Second, "per-response write bound (0 disables)")
	degrade := fs.Float64("degrade", 0.75, "deadline fraction before Union-Find fallback (0 disables)")
	fs.DurationVar(&drain, "drain-timeout", 10*time.Second, "SIGTERM drain bound (0 = unbounded)")
	if err = fs.Parse(args); err != nil {
		return cfg, "", "", 0, err
	}
	cfg.P = *p
	cfg.DefaultDeadlineNs = uint64(deadline.Nanoseconds())
	cfg.MaxConns = orDisabledInt(*maxConns)
	cfg.HandshakeTimeout = orDisabled(*handshakeTO)
	cfg.IdleTimeout = orDisabled(*idleTO)
	cfg.WriteTimeout = orDisabled(*writeTO)
	if *degrade <= 0 {
		cfg.DegradeFraction = -1
	} else {
		cfg.DegradeFraction = *degrade
	}
	for _, part := range strings.Split(*distances, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, convErr := strconv.Atoi(part)
		if convErr != nil {
			return cfg, "", "", 0, fmt.Errorf("bad distance %q: %w", part, convErr)
		}
		cfg.Distances = append(cfg.Distances, d)
	}
	return cfg, listen, httpAddr, drain, nil
}

func orDisabled(d time.Duration) time.Duration {
	if d <= 0 {
		return -1
	}
	return d
}

func orDisabledInt(n int) int {
	if n <= 0 {
		return -1
	}
	return n
}

func run(args []string) error {
	cfg, listen, httpAddr, drain, err := buildConfig(args)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "astread: building decoder pools (decoder=%s, distances=%v, p=%g)...\n",
		cfg.Decoder, cfg.Distances, cfg.P)
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	// Print each distance's configuration fingerprint so operators can pin
	// it fleet-wide (astrea-loadgen -expect-fingerprint, cluster clients):
	// replicas built from a different DEM or weight table advertise a
	// different digest and are quarantined instead of silently disagreeing.
	fps := srv.Fingerprints()
	for _, d := range cfg.Distances {
		if fp, ok := fps[d]; ok {
			fmt.Fprintf(os.Stderr, "astread: fingerprint d=%d %s\n", d, fp)
		}
	}

	if httpAddr != "" {
		expvar.Publish("astread", expvar.Func(func() interface{} { return srv.Snapshot() }))
		mux := http.NewServeMux()
		mux.Handle("/stats", srv.StatsHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		go func() {
			if err := http.ListenAndServe(httpAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "astread: stats endpoint:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "astread: stats on http://%s/stats\n", httpAddr)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(listen) }()
	fmt.Fprintf(os.Stderr, "astread: decoding on %s\n", listen)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "astread: %v, draining\n", s)
	}
	// Bounded drain: Close waits for in-flight work, but a wedged peer or a
	// pathological queue must not stall shutdown forever. On timeout the
	// still-queued requests are abandoned and reported, and the process
	// exits anyway (kubelet-style SIGKILL comes next regardless).
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	if drain > 0 {
		select {
		case err := <-done:
			if err != nil {
				return err
			}
		case <-time.After(drain):
			snap := srv.Snapshot()
			abandoned := snap.Accepted - snap.Completed - snap.Panics
			fmt.Fprintf(os.Stderr, "astread: drain timeout (%v) expired, abandoning %d queued request(s)\n",
				drain, abandoned)
		}
	} else if err := <-done; err != nil {
		return err
	}
	out, err := json.MarshalIndent(srv.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

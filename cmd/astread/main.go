// Command astread is the syndrome-decoding daemon: it serves the wire
// protocol of internal/server over TCP, decoding DEM syndromes with
// per-distance decoder pools, a bounded batched queue with backpressure,
// and per-request deadline accounting against the paper's 1 µs real-time
// budget.
//
// Usage:
//
//	astread [flags]
//
// Flags:
//
//	-listen addr      TCP decode endpoint (default :7717)
//	-http addr        stats endpoint, /stats + expvar /debug/vars (default :7718, "" disables)
//	-distances list   comma-separated code distances to serve (default 3,5,7)
//	-p rate           physical error rate the GWTs are programmed for (default 1e-3)
//	-decoder name     astrea | astrea-g | mwpm | uf | uf-unweighted (default astrea)
//	-queue N          request queue bound; overflow is rejected (default 1024)
//	-batch N          max requests per worker wake-up (default 16)
//	-workers N        decode workers (default GOMAXPROCS)
//	-deadline dur     default per-request deadline (default 1µs)
//	-max-conns N      concurrent connection cap; excess refused (default 4096, 0 = unlimited)
//	-handshake-timeout dur  Hello exchange bound per connection (default 10s, 0 disables)
//	-idle-timeout dur       reap connections idle this long (default 5m, 0 disables)
//	-write-timeout dur      per-response write bound (default 30s, 0 disables)
//	-degrade frac     fraction of the deadline budget the queue sojourn may
//	                  consume before decoding with the fast Union-Find
//	                  fallback (FlagDegraded) (default 0.75, 0 disables)
//	-drain-timeout dur      SIGTERM drain bound; requests still queued when it
//	                  expires are abandoned and counted (default 10s, 0 = unbounded)
//	-stream-resume-ttl dur  how long a streaming session whose connection
//	                  died stays parked and resumable; expired sessions are
//	                  torn down and their pipelines aborted (default 2m,
//	                  0 disables resume entirely — the FeatureStreamResume
//	                  bit is never granted)
//	-stream-resume-max-sessions N  parked-session cap; parking beyond it
//	                  evicts the oldest parked session (default 64)
//	-stream-resume-max-bytes N     estimated memory retained by parked
//	                  sessions (buffers + retained commits) before oldest-
//	                  first eviction (default 16MiB)
//	-artifact files   comma-separated compiled .astc bundles (astrea compile)
//	                  to hydrate decoder pools from, skipping the inline
//	                  build pipeline (DEM extraction + BuildGWT) entirely
//	-artifact-dir dir load every *.astc bundle in a directory; when several
//	                  bundles cover one distance the highest generation wins
//	-artifact-watch dur  re-scan -artifact-dir at this interval and hot-swap
//	                  any served distance for which a strictly newer
//	                  generation has appeared (0 disables; requires
//	                  -artifact-dir)
//
// When artifacts are supplied and -distances is not, the daemon serves
// exactly the artifact operating points; an explicit -distances list is
// served as given, hydrating from artifacts where one matches and building
// inline otherwise. Startup logs the per-distance load-vs-build time split,
// and each pool advertises the artifact's fingerprint, which is also what
// fleet clients pin straight from the file (-expect-fingerprint-artifact).
//
// SIGHUP triggers an immediate re-scan of -artifact-dir — drop a freshly
// compiled, higher-generation bundle into the directory and signal the
// daemon to rotate onto it with zero downtime: in-flight requests and open
// streams finish on the generation they started on, new work lands on the
// new tables. A rotation that would change the operating point's shape
// (rounds, basis, detector count) is refused and logged; a recalibrated
// physical error rate is exactly what rotation is for. Note that startup
// still enforces -p against the chosen bundle, so after rotating to a
// recalibrated rate, restart with the matching -p.
//
// The daemon runs until SIGINT/SIGTERM, then drains (bounded by
// -drain-timeout) and prints a final stats snapshot.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"astrea/internal/artifact"
	"astrea/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "astread:", err)
		os.Exit(1)
	}
}

// options is everything the daemon derives from its command line.
type options struct {
	cfg      server.Config
	listen   string
	httpAddr string
	drain    time.Duration
	// artifactPaths lists .astc bundles to hydrate pools from (the -artifact
	// files plus every *.astc found under -artifact-dir).
	artifactPaths []string
	// artifactDir is the rotation watch directory; watch is the re-scan
	// cadence (0: only SIGHUP triggers a re-scan).
	artifactDir string
	watch       time.Duration
	// distancesSet records whether -distances was given explicitly; when it
	// was not and artifacts are supplied, the artifact operating points
	// define the served set.
	distancesSet bool
}

// buildConfig parses flags into a server configuration plus the listen
// addresses and drain bound; split out for testing. Flags use 0 to mean
// "disabled/unlimited", mapped onto the Config convention where zero means
// default and negative means disabled.
func buildConfig(args []string) (opts options, err error) {
	cfg := &opts.cfg
	fs := flag.NewFlagSet("astread", flag.ContinueOnError)
	fs.StringVar(&opts.listen, "listen", ":7717", "TCP decode endpoint")
	fs.StringVar(&opts.httpAddr, "http", ":7718", "stats endpoint (empty disables)")
	distances := fs.String("distances", "3,5,7", "comma-separated code distances")
	p := fs.Float64("p", 1e-3, "physical error rate")
	fs.StringVar(&cfg.Decoder, "decoder", "astrea", "decoder: astrea, astrea-g, mwpm, uf or uf-unweighted")
	fs.IntVar(&cfg.QueueDepth, "queue", 1024, "request queue bound")
	fs.IntVar(&cfg.BatchSize, "batch", 16, "max requests per worker wake-up")
	fs.IntVar(&cfg.Workers, "workers", 0, "decode workers (0 = GOMAXPROCS)")
	deadline := fs.Duration("deadline", time.Microsecond, "default per-request deadline")
	maxConns := fs.Int("max-conns", 4096, "concurrent connection cap (0 = unlimited)")
	handshakeTO := fs.Duration("handshake-timeout", 10*time.Second, "handshake bound per connection (0 disables)")
	idleTO := fs.Duration("idle-timeout", 5*time.Minute, "reap connections idle this long (0 disables)")
	writeTO := fs.Duration("write-timeout", 30*time.Second, "per-response write bound (0 disables)")
	degrade := fs.Float64("degrade", 0.75, "deadline fraction before Union-Find fallback (0 disables)")
	resumeTTL := fs.Duration("stream-resume-ttl", 2*time.Minute, "parked streaming sessions kept resumable this long (0 disables resume)")
	resumeMaxSessions := fs.Int("stream-resume-max-sessions", 64, "parked streaming session cap (oldest evicted beyond it)")
	resumeMaxBytes := fs.Int64("stream-resume-max-bytes", 16<<20, "estimated bytes retained by parked sessions before eviction")
	fs.DurationVar(&opts.drain, "drain-timeout", 10*time.Second, "SIGTERM drain bound (0 = unbounded)")
	artifacts := fs.String("artifact", "", "comma-separated compiled .astc bundles to serve from")
	artifactDir := fs.String("artifact-dir", "", "load every *.astc bundle in this directory")
	fs.DurationVar(&opts.watch, "artifact-watch", 0, "re-scan -artifact-dir for newer generations at this interval (0 disables)")
	if err = fs.Parse(args); err != nil {
		return options{}, err
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "distances" {
			opts.distancesSet = true
		}
	})
	cfg.P = *p
	cfg.DefaultDeadlineNs = uint64(deadline.Nanoseconds())
	cfg.MaxConns = orDisabledInt(*maxConns)
	cfg.HandshakeTimeout = orDisabled(*handshakeTO)
	cfg.IdleTimeout = orDisabled(*idleTO)
	cfg.WriteTimeout = orDisabled(*writeTO)
	if *degrade <= 0 {
		cfg.DegradeFraction = -1
	} else {
		cfg.DegradeFraction = *degrade
	}
	cfg.StreamResumeTTL = orDisabled(*resumeTTL)
	cfg.StreamResumeMaxSessions = orDisabledInt(*resumeMaxSessions)
	cfg.StreamResumeMaxBytes = orDisabledInt64(*resumeMaxBytes)
	for _, part := range strings.Split(*distances, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, convErr := strconv.Atoi(part)
		if convErr != nil {
			return options{}, fmt.Errorf("bad distance %q: %w", part, convErr)
		}
		cfg.Distances = append(cfg.Distances, d)
	}
	for _, part := range strings.Split(*artifacts, ",") {
		if part = strings.TrimSpace(part); part != "" {
			opts.artifactPaths = append(opts.artifactPaths, part)
		}
	}
	if *artifactDir != "" {
		found, globErr := filepath.Glob(filepath.Join(*artifactDir, "*.astc"))
		if globErr != nil {
			return options{}, globErr
		}
		if len(found) == 0 {
			return options{}, fmt.Errorf("artifact-dir %s contains no .astc bundles", *artifactDir)
		}
		sort.Strings(found)
		opts.artifactPaths = append(opts.artifactPaths, found...)
		opts.artifactDir = *artifactDir
	}
	if opts.watch > 0 && opts.artifactDir == "" {
		return options{}, fmt.Errorf("-artifact-watch needs an -artifact-dir to watch")
	}
	return opts, nil
}

// loadArtifacts reads and validates every configured bundle, returning them
// keyed by distance. When two bundles cover one distance the strictly
// higher generation wins (a watch directory accumulates recalibrations);
// two at the same generation — or a winner whose p disagrees with the
// configuration — is an operator error worth refusing over, not guessing
// about.
func loadArtifacts(opts *options) (map[int]*artifact.Artifact, error) {
	if len(opts.artifactPaths) == 0 {
		return nil, nil
	}
	arts := make(map[int]*artifact.Artifact, len(opts.artifactPaths))
	loadNs := make(map[int]time.Duration, len(opts.artifactPaths))
	for _, path := range opts.artifactPaths {
		start := time.Now()
		a, err := artifact.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if prev := arts[a.Meta.Distance]; prev != nil {
			if prev.Meta.Generation == a.Meta.Generation {
				return nil, fmt.Errorf("two artifacts for d=%d at generation %d (%s and %s)",
					a.Meta.Distance, a.Meta.Generation, prev.Meta, a.Meta)
			}
			if prev.Meta.Generation > a.Meta.Generation {
				continue
			}
		}
		arts[a.Meta.Distance] = a
		loadNs[a.Meta.Distance] = time.Since(start)
	}
	// Validate and report only the winners: a superseded generation left in
	// the watch directory may carry a stale p without blocking startup.
	for d, a := range arts {
		if a.Meta.P != opts.cfg.P {
			return nil, fmt.Errorf("%s: compiled for p=%g, daemon configured for p=%g (pass a matching -p)",
				a.Meta, a.Meta.P, opts.cfg.P)
		}
		fmt.Fprintf(os.Stderr, "astread: loaded artifact d=%d (%s, fingerprint %s) in %v — BuildGWT skipped\n",
			d, a.Meta, a.Fingerprint, loadNs[d].Round(time.Millisecond))
	}
	if !opts.distancesSet {
		// No explicit -distances: the artifacts define the served set.
		opts.cfg.Distances = opts.cfg.Distances[:0]
		for d := range arts {
			opts.cfg.Distances = append(opts.cfg.Distances, d)
		}
		sort.Ints(opts.cfg.Distances)
	}
	return arts, nil
}

// rescanArtifacts re-reads the watch directory and hot-swaps every served
// distance for which a strictly newer generation has appeared, leaving the
// rest untouched. Unreadable bundles and refused rotations are logged and
// skipped — a bad drop must never take down the generations already
// serving.
func rescanArtifacts(srv *server.Server, dir string) {
	found, err := filepath.Glob(filepath.Join(dir, "*.astc"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "astread: re-scan of %s: %v\n", dir, err)
		return
	}
	sort.Strings(found)
	best := make(map[int]*artifact.Artifact)
	for _, path := range found {
		a, err := artifact.ReadFile(path)
		if err != nil {
			// Possibly a bundle still being copied in; the next re-scan
			// picks it up once it decodes cleanly.
			fmt.Fprintf(os.Stderr, "astread: re-scan: skipping %s: %v\n", path, err)
			continue
		}
		if cur := best[a.Meta.Distance]; cur == nil || a.Meta.Generation > cur.Meta.Generation {
			best[a.Meta.Distance] = a
		}
	}
	gens := srv.Snapshot().Generations
	for d, a := range best {
		gs, ok := gens[strconv.Itoa(d)]
		if !ok {
			continue // distance not served; nothing to swap
		}
		if a.Meta.Generation <= gs.Generation {
			continue // nothing newer than what is already serving
		}
		if a.Fingerprint.String() == gs.Fingerprint {
			// Re-stamped but identical tables: adopt silently would churn
			// pools for nothing, and Rotate refuses it anyway.
			continue
		}
		fp, err := srv.Rotate(server.Rotation{Artifact: a})
		if err != nil {
			fmt.Fprintf(os.Stderr, "astread: rotation d=%d to generation %d refused: %v\n",
				d, a.Meta.Generation, err)
			continue
		}
		fmt.Fprintf(os.Stderr, "astread: rotated d=%d to generation %d (fingerprint %s, p=%g); old generation draining\n",
			d, a.Meta.Generation, fp, a.Meta.P)
	}
}

func orDisabled(d time.Duration) time.Duration {
	if d <= 0 {
		return -1
	}
	return d
}

func orDisabledInt(n int) int {
	if n <= 0 {
		return -1
	}
	return n
}

func orDisabledInt64(n int64) int64 {
	if n <= 0 {
		return -1
	}
	return n
}

func run(args []string) error {
	opts, err := buildConfig(args)
	if err != nil {
		return err
	}
	arts, err := loadArtifacts(&opts)
	if err != nil {
		return err
	}
	cfg, listen, httpAddr, drain := opts.cfg, opts.listen, opts.httpAddr, opts.drain
	cfg.Artifacts = arts

	var inline []int
	for _, d := range cfg.Distances {
		if arts[d] == nil {
			inline = append(inline, d)
		}
	}
	if len(inline) > 0 {
		fmt.Fprintf(os.Stderr, "astread: building decoder pools inline (decoder=%s, distances=%v, p=%g)...\n",
			cfg.Decoder, inline, cfg.P)
	}
	start := time.Now()
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	// The load-vs-build split: loadArtifacts logged each bundle's load time
	// above; whatever New spent beyond pool plumbing is the inline builds.
	fmt.Fprintf(os.Stderr, "astread: decoder pools ready in %v (%d loaded from artifacts, %d built inline)\n",
		time.Since(start).Round(time.Millisecond), len(arts), len(inline))
	// Print each distance's configuration fingerprint so operators can pin
	// it fleet-wide (astrea-loadgen -expect-fingerprint, cluster clients):
	// replicas built from a different DEM or weight table advertise a
	// different digest and are quarantined instead of silently disagreeing.
	fps := srv.Fingerprints()
	for _, d := range cfg.Distances {
		if fp, ok := fps[d]; ok {
			fmt.Fprintf(os.Stderr, "astread: fingerprint d=%d %s\n", d, fp)
		}
	}

	if httpAddr != "" {
		expvar.Publish("astread", expvar.Func(func() interface{} { return srv.Snapshot() }))
		mux := http.NewServeMux()
		mux.Handle("/stats", srv.StatsHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		go func() {
			if err := http.ListenAndServe(httpAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "astread: stats endpoint:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "astread: stats on http://%s/stats\n", httpAddr)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(listen) }()
	fmt.Fprintf(os.Stderr, "astread: decoding on %s\n", listen)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	var watchC <-chan time.Time
	if opts.watch > 0 {
		ticker := time.NewTicker(opts.watch)
		defer ticker.Stop()
		watchC = ticker.C
		fmt.Fprintf(os.Stderr, "astread: watching %s for newer artifact generations every %v\n",
			opts.artifactDir, opts.watch)
	}
serve:
	for {
		select {
		case err := <-errCh:
			return err
		case s := <-sig:
			fmt.Fprintf(os.Stderr, "astread: %v, draining\n", s)
			break serve
		case <-hup:
			if opts.artifactDir == "" {
				fmt.Fprintln(os.Stderr, "astread: SIGHUP, but no -artifact-dir to re-scan")
				continue
			}
			fmt.Fprintf(os.Stderr, "astread: SIGHUP, re-scanning %s\n", opts.artifactDir)
			rescanArtifacts(srv, opts.artifactDir)
		case <-watchC:
			rescanArtifacts(srv, opts.artifactDir)
		}
	}
	// Bounded drain: Close waits for in-flight work, but a wedged peer or a
	// pathological queue must not stall shutdown forever. On timeout the
	// still-queued requests are abandoned and reported, and the process
	// exits anyway (kubelet-style SIGKILL comes next regardless).
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	if drain > 0 {
		select {
		case err := <-done:
			if err != nil {
				return err
			}
		case <-time.After(drain):
			snap := srv.Snapshot()
			abandoned := snap.Accepted - snap.Completed - snap.Panics
			fmt.Fprintf(os.Stderr, "astread: drain timeout (%v) expired, abandoning %d queued request(s)\n",
				drain, abandoned)
		}
	} else if err := <-done; err != nil {
		return err
	}
	out, err := json.MarshalIndent(srv.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

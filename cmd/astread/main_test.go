package main

import "testing"

func TestBuildConfigDefaults(t *testing.T) {
	cfg, listen, httpAddr, err := buildConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if listen != ":7717" || httpAddr != ":7718" {
		t.Fatalf("default addrs: %q, %q", listen, httpAddr)
	}
	if got, want := len(cfg.Distances), 3; got != want {
		t.Fatalf("default distances: %v", cfg.Distances)
	}
	if cfg.Decoder != "astrea" || cfg.QueueDepth != 1024 || cfg.BatchSize != 16 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.DefaultDeadlineNs != 1000 {
		t.Fatalf("default deadline: %d ns", cfg.DefaultDeadlineNs)
	}
}

func TestBuildConfigParsesFlags(t *testing.T) {
	cfg, listen, _, err := buildConfig([]string{
		"-listen", "127.0.0.1:0", "-distances", "5, 9", "-decoder", "uf",
		"-queue", "8", "-deadline", "2us",
	})
	if err != nil {
		t.Fatal(err)
	}
	if listen != "127.0.0.1:0" {
		t.Fatalf("listen: %q", listen)
	}
	if len(cfg.Distances) != 2 || cfg.Distances[0] != 5 || cfg.Distances[1] != 9 {
		t.Fatalf("distances: %v", cfg.Distances)
	}
	if cfg.Decoder != "uf" || cfg.QueueDepth != 8 || cfg.DefaultDeadlineNs != 2000 {
		t.Fatalf("parsed: %+v", cfg)
	}
}

func TestBuildConfigRejectsBadDistance(t *testing.T) {
	if _, _, _, err := buildConfig([]string{"-distances", "3,x"}); err == nil {
		t.Fatal("bad distance accepted")
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"astrea/internal/artifact"
	"astrea/internal/server"
	"astrea/internal/surface"
)

func TestBuildConfigDefaults(t *testing.T) {
	opts, err := buildConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg, listen, httpAddr, drain := opts.cfg, opts.listen, opts.httpAddr, opts.drain
	if listen != ":7717" || httpAddr != ":7718" {
		t.Fatalf("default addrs: %q, %q", listen, httpAddr)
	}
	if got, want := len(cfg.Distances), 3; got != want {
		t.Fatalf("default distances: %v", cfg.Distances)
	}
	if cfg.Decoder != "astrea" || cfg.QueueDepth != 1024 || cfg.BatchSize != 16 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.DefaultDeadlineNs != 1000 {
		t.Fatalf("default deadline: %d ns", cfg.DefaultDeadlineNs)
	}
	if cfg.MaxConns != 4096 || cfg.DegradeFraction != 0.75 {
		t.Fatalf("robustness defaults: %+v", cfg)
	}
	if cfg.HandshakeTimeout != 10*time.Second || cfg.IdleTimeout != 5*time.Minute || cfg.WriteTimeout != 30*time.Second {
		t.Fatalf("timeout defaults: %+v", cfg)
	}
	if drain != 10*time.Second {
		t.Fatalf("default drain: %v", drain)
	}
}

func TestBuildConfigParsesFlags(t *testing.T) {
	opts, err := buildConfig([]string{
		"-listen", "127.0.0.1:0", "-distances", "5, 9", "-decoder", "uf",
		"-queue", "8", "-deadline", "2us",
		"-max-conns", "2", "-idle-timeout", "30s", "-degrade", "0.5",
		"-drain-timeout", "3s",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg, listen, drain := opts.cfg, opts.listen, opts.drain
	if listen != "127.0.0.1:0" {
		t.Fatalf("listen: %q", listen)
	}
	if len(cfg.Distances) != 2 || cfg.Distances[0] != 5 || cfg.Distances[1] != 9 {
		t.Fatalf("distances: %v", cfg.Distances)
	}
	if cfg.Decoder != "uf" || cfg.QueueDepth != 8 || cfg.DefaultDeadlineNs != 2000 {
		t.Fatalf("parsed: %+v", cfg)
	}
	if cfg.MaxConns != 2 || cfg.IdleTimeout != 30*time.Second || cfg.DegradeFraction != 0.5 {
		t.Fatalf("robustness flags: %+v", cfg)
	}
	if drain != 3*time.Second {
		t.Fatalf("drain: %v", drain)
	}
}

// TestBuildConfigDisabledSentinels: flag value 0 means "disabled", which
// the server Config spells as negative (its zero means "use the default").
func TestBuildConfigDisabledSentinels(t *testing.T) {
	opts, err := buildConfig([]string{
		"-max-conns", "0", "-handshake-timeout", "0", "-idle-timeout", "0",
		"-write-timeout", "0", "-degrade", "0", "-drain-timeout", "0",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg, drain := opts.cfg, opts.drain
	if cfg.MaxConns >= 0 || cfg.DegradeFraction >= 0 {
		t.Fatalf("0 flags not mapped to disabled: %+v", cfg)
	}
	if cfg.HandshakeTimeout >= 0 || cfg.IdleTimeout >= 0 || cfg.WriteTimeout >= 0 {
		t.Fatalf("0 timeouts not mapped to disabled: %+v", cfg)
	}
	if drain != 0 {
		t.Fatalf("drain: %v", drain)
	}
}

func TestBuildConfigRejectsBadDistance(t *testing.T) {
	if _, err := buildConfig([]string{"-distances", "3,x"}); err == nil {
		t.Fatal("bad distance accepted")
	}
}

func TestBuildConfigArtifactFlags(t *testing.T) {
	opts, err := buildConfig([]string{"-artifact", "a.astc, b.astc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.artifactPaths) != 2 || opts.artifactPaths[0] != "a.astc" || opts.artifactPaths[1] != "b.astc" {
		t.Fatalf("artifact paths: %v", opts.artifactPaths)
	}
	if opts.distancesSet {
		t.Fatal("distancesSet true without an explicit -distances")
	}
	opts, err = buildConfig([]string{"-artifact", "a.astc", "-distances", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if !opts.distancesSet {
		t.Fatal("explicit -distances not recorded")
	}
}

func TestBuildConfigArtifactDir(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"b.astc", "a.astc", "ignored.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	opts, err := buildConfig([]string{"-artifact-dir", dir})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(dir, "a.astc"), filepath.Join(dir, "b.astc")}
	if len(opts.artifactPaths) != 2 || opts.artifactPaths[0] != want[0] || opts.artifactPaths[1] != want[1] {
		t.Fatalf("artifact-dir paths: %v, want %v", opts.artifactPaths, want)
	}
	if _, err := buildConfig([]string{"-artifact-dir", t.TempDir()}); err == nil {
		t.Fatal("empty artifact-dir accepted")
	}
}

// compileTestBundle writes a d=3 r=3 p=1e-3 bundle and returns its path.
func compileTestBundle(t *testing.T) string {
	t.Helper()
	a, err := artifact.Compile(3, 3, 1e-3, surface.BasisZ)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	path := filepath.Join(t.TempDir(), artifact.FileName(a.Meta))
	if err := a.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

func TestLoadArtifacts(t *testing.T) {
	path := compileTestBundle(t)

	opts, err := buildConfig([]string{"-artifact", path})
	if err != nil {
		t.Fatal(err)
	}
	arts, err := loadArtifacts(&opts)
	if err != nil {
		t.Fatalf("loadArtifacts: %v", err)
	}
	if arts[3] == nil {
		t.Fatalf("bundle for d=3 not loaded: %v", arts)
	}
	// Without explicit -distances the artifacts define the served set.
	if len(opts.cfg.Distances) != 1 || opts.cfg.Distances[0] != 3 {
		t.Fatalf("served set: %v, want [3]", opts.cfg.Distances)
	}

	// Same bundle twice: duplicate distance is refused.
	opts, err = buildConfig([]string{"-artifact", path + "," + path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loadArtifacts(&opts); err == nil {
		t.Fatal("duplicate-distance artifacts accepted")
	}

	// p disagreeing with the daemon configuration is refused.
	opts, err = buildConfig([]string{"-artifact", path, "-p", "2e-3"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loadArtifacts(&opts); err == nil {
		t.Fatal("artifact with mismatched p accepted")
	}
}

func TestServerFromArtifacts(t *testing.T) {
	path := compileTestBundle(t)
	opts, err := buildConfig([]string{"-artifact", path, "-workers", "1"})
	if err != nil {
		t.Fatal(err)
	}
	arts, err := loadArtifacts(&opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.cfg.Artifacts = arts
	srv, err := server.New(opts.cfg)
	if err != nil {
		t.Fatalf("server.New from artifacts: %v", err)
	}
	srv.Close()
}

// compileGeneration writes a d=3 r=3 bundle at the given rate and
// generation into dir and returns the artifact.
func compileGeneration(t *testing.T, dir string, p float64, gen uint64) *artifact.Artifact {
	t.Helper()
	a, err := artifact.Compile(3, 3, p, surface.BasisZ)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	a.Meta.Generation = gen
	if err := a.WriteFile(filepath.Join(dir, artifact.FileName(a.Meta))); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return a
}

func TestBuildConfigWatchNeedsDir(t *testing.T) {
	if _, err := buildConfig([]string{"-artifact-watch", "5s"}); err == nil {
		t.Fatal("-artifact-watch without -artifact-dir accepted")
	}
}

// TestLoadArtifactsPicksNewestGeneration: a watch directory accumulates
// recalibrations; startup must serve the highest generation per distance
// and ignore a superseded bundle entirely — including its stale p.
func TestLoadArtifactsPicksNewestGeneration(t *testing.T) {
	dir := t.TempDir()
	compileGeneration(t, dir, 1e-3, 0)
	a1 := compileGeneration(t, dir, 2e-3, 1)

	opts, err := buildConfig([]string{"-artifact-dir", dir, "-p", "2e-3"})
	if err != nil {
		t.Fatal(err)
	}
	arts, err := loadArtifacts(&opts)
	if err != nil {
		t.Fatalf("loadArtifacts over mixed generations: %v", err)
	}
	if arts[3] == nil || arts[3].Meta.Generation != 1 || arts[3].Fingerprint != a1.Fingerprint {
		t.Fatalf("loaded %v, want the generation-1 bundle", arts[3])
	}

	// Two bundles at the SAME generation stay an operator error.
	src, err := os.ReadFile(filepath.Join(dir, artifact.FileName(a1.Meta)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "copy.astc"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	opts, err = buildConfig([]string{"-artifact-dir", dir, "-p", "2e-3"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loadArtifacts(&opts); err == nil {
		t.Fatal("two bundles at one generation accepted")
	}
}

// TestRescanRotates drives the watch-directory path end to end in
// process: a newer generation appearing in the directory hot-swaps the
// served pool, while re-scans with nothing newer — or with unreadable
// drops — change nothing.
func TestRescanRotates(t *testing.T) {
	dir := t.TempDir()
	a0 := compileGeneration(t, dir, 1e-3, 0)
	srv, err := server.New(server.Config{
		Distances: []int{3},
		Artifacts: map[int]*artifact.Artifact{3: a0},
		Workers:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Nothing newer: a re-scan is a no-op.
	rescanArtifacts(srv, dir)
	if n := srv.Snapshot().Rotations; n != 0 {
		t.Fatalf("re-scan with nothing newer rotated %d times", n)
	}

	// A corrupt drop (a bundle mid-copy) is skipped without harm.
	if err := os.WriteFile(filepath.Join(dir, "torn.astc"), []byte("astc?"), 0o644); err != nil {
		t.Fatal(err)
	}
	rescanArtifacts(srv, dir)
	if n := srv.Snapshot().Rotations; n != 0 {
		t.Fatalf("re-scan over a corrupt bundle rotated %d times", n)
	}

	// A strictly newer generation rotates the pool.
	a1 := compileGeneration(t, dir, 2e-3, 1)
	rescanArtifacts(srv, dir)
	snap := srv.Snapshot()
	if snap.Rotations != 1 {
		t.Fatalf("re-scan with a newer generation rotated %d times, want 1", snap.Rotations)
	}
	if fp := srv.Fingerprints()[3]; fp != a1.Fingerprint {
		t.Fatalf("serving fingerprint %s after rotation, want %s", fp, a1.Fingerprint)
	}

	// Re-running the same scan is idempotent.
	rescanArtifacts(srv, dir)
	if n := srv.Snapshot().Rotations; n != 1 {
		t.Fatalf("idempotent re-scan rotated again (%d total)", n)
	}
}

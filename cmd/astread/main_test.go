package main

import (
	"testing"
	"time"
)

func TestBuildConfigDefaults(t *testing.T) {
	cfg, listen, httpAddr, drain, err := buildConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if listen != ":7717" || httpAddr != ":7718" {
		t.Fatalf("default addrs: %q, %q", listen, httpAddr)
	}
	if got, want := len(cfg.Distances), 3; got != want {
		t.Fatalf("default distances: %v", cfg.Distances)
	}
	if cfg.Decoder != "astrea" || cfg.QueueDepth != 1024 || cfg.BatchSize != 16 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.DefaultDeadlineNs != 1000 {
		t.Fatalf("default deadline: %d ns", cfg.DefaultDeadlineNs)
	}
	if cfg.MaxConns != 4096 || cfg.DegradeFraction != 0.75 {
		t.Fatalf("robustness defaults: %+v", cfg)
	}
	if cfg.HandshakeTimeout != 10*time.Second || cfg.IdleTimeout != 5*time.Minute || cfg.WriteTimeout != 30*time.Second {
		t.Fatalf("timeout defaults: %+v", cfg)
	}
	if drain != 10*time.Second {
		t.Fatalf("default drain: %v", drain)
	}
}

func TestBuildConfigParsesFlags(t *testing.T) {
	cfg, listen, _, drain, err := buildConfig([]string{
		"-listen", "127.0.0.1:0", "-distances", "5, 9", "-decoder", "uf",
		"-queue", "8", "-deadline", "2us",
		"-max-conns", "2", "-idle-timeout", "30s", "-degrade", "0.5",
		"-drain-timeout", "3s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if listen != "127.0.0.1:0" {
		t.Fatalf("listen: %q", listen)
	}
	if len(cfg.Distances) != 2 || cfg.Distances[0] != 5 || cfg.Distances[1] != 9 {
		t.Fatalf("distances: %v", cfg.Distances)
	}
	if cfg.Decoder != "uf" || cfg.QueueDepth != 8 || cfg.DefaultDeadlineNs != 2000 {
		t.Fatalf("parsed: %+v", cfg)
	}
	if cfg.MaxConns != 2 || cfg.IdleTimeout != 30*time.Second || cfg.DegradeFraction != 0.5 {
		t.Fatalf("robustness flags: %+v", cfg)
	}
	if drain != 3*time.Second {
		t.Fatalf("drain: %v", drain)
	}
}

// TestBuildConfigDisabledSentinels: flag value 0 means "disabled", which
// the server Config spells as negative (its zero means "use the default").
func TestBuildConfigDisabledSentinels(t *testing.T) {
	cfg, _, _, drain, err := buildConfig([]string{
		"-max-conns", "0", "-handshake-timeout", "0", "-idle-timeout", "0",
		"-write-timeout", "0", "-degrade", "0", "-drain-timeout", "0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxConns >= 0 || cfg.DegradeFraction >= 0 {
		t.Fatalf("0 flags not mapped to disabled: %+v", cfg)
	}
	if cfg.HandshakeTimeout >= 0 || cfg.IdleTimeout >= 0 || cfg.WriteTimeout >= 0 {
		t.Fatalf("0 timeouts not mapped to disabled: %+v", cfg)
	}
	if drain != 0 {
		t.Fatalf("drain: %v", drain)
	}
}

func TestBuildConfigRejectsBadDistance(t *testing.T) {
	if _, _, _, _, err := buildConfig([]string{"-distances", "3,x"}); err == nil {
		t.Fatal("bad distance accepted")
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"astrea/internal/experiments"
)

func TestBudgetSelection(t *testing.T) {
	for name, want := range map[string]experiments.Budget{
		"quick": experiments.Quick, "standard": experiments.Standard, "full": experiments.Full,
	} {
		got, err := budget(name)
		if err != nil || got != want {
			t.Fatalf("budget(%q) = %+v, %v", name, got, err)
		}
	}
	if _, err := budget("bogus"); err == nil {
		t.Fatal("unknown budget accepted")
	}
}

func TestDispatchRejectsUnknown(t *testing.T) {
	if _, err := dispatch("99", nil, experiments.Quick); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := dispatch("3", []string{"notanumber"}, experiments.Quick); err == nil {
		t.Fatal("bad argument accepted")
	}
}

func TestDispatchStaticExperiment(t *testing.T) {
	rs, err := dispatch("0", nil, experiments.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("experiment 0 produced %d renderers", len(rs))
	}
}

func TestRunEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.txt")
	err := run([]string{"-budget", "quick", "-shots", "20000", "-shotsperk", "200",
		"-seed", "5", out, "6", "3", "1e-3"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{"Figure 6", "Table 2", "logical error rate"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing args accepted")
	}
	if err := run([]string{"-budget", "bogus", "x", "0"}); err == nil {
		t.Fatal("bad budget accepted")
	}
	if err := run([]string{"/nonexistent-dir/x.txt", "0"}); err == nil {
		t.Fatal("unwritable output accepted")
	}
}

// Command astrea is the experiment runner, mirroring the paper artifact's
// CLI: it regenerates the evaluation's tables and figures and writes the
// rendered results to an output file (and stdout).
//
// Usage:
//
//	astrea [flags] <output-file> <experiment> [args...]
//	astrea compile [-out dir] [-distances 3,5,7] [-rounds N] [-p rate] [-basis Z|X] [-gen N]
//
// The compile subcommand runs the expensive build pipeline (surface code →
// noisy circuit → detector error model → decoding graph → Global Weight
// Table) once per distance and writes each operating point as a versioned,
// checksummed .astc bundle that astread (-artifact / -artifact-dir) and
// astrea.LoadSystem hydrate at startup without rebuilding anything.
// Compilation is deterministic: the same operating point always produces a
// byte-identical bundle. -gen stamps the bundles with a generation ordinal
// for zero-downtime rotation: a running astread picks up a strictly newer
// generation from its watch directory (-artifact-watch or SIGHUP) and
// hot-swaps onto it.
//
// Experiments (numbers follow the artifact where one exists):
//
//	1  <d>                      LER vs physical error rate (Fig 12 at d=7, Fig 14 at d=9)
//	2  [d...]                   Table 4: per-decoder logical error rates at p=1e-4
//	3  <d> <p>                  Fig 3: software MWPM latency distribution
//	4                           Fig 4: LER vs distance for MWPM/AFS/Clique
//	5                           Table 5: Hamming-weight probabilities, d=7, p=1e-3 vs 1e-4
//	6  <d> <p>                  Table 2 row / Fig 6: Hamming-weight histogram + MWPM LER
//	9                           Fig 9: Astrea latency by distance
//	10 <d> <p>                  Fig 10(a)+(b): GWT weight histogram and W_th filtering
//	12 <d> <t0> <t1> <step>     Table 7: bandwidth/transmission-time study (ns)
//	13                          Fig 13: W_th sweep, d=7, p=1e-3
//	14                          Table 9: stratified LERs at p=1e-4, d=7/9/11
//	0                           static models: Tables 1, 3, 6, 8 and the LILLIPUT wall
//	15 <d> <p>                  streaming real-time study (Fig 3 extension)
//	16 <d> <p>                  syndrome compression study (§7.6)
//	17 <d>                      non-uniform noise / GWT reprogramming (§8.2)
//	18 <d> <p>                  memory-X vs memory-Z equivalence (§3.4)
//	19 <d> <p>                  Astrea-G F/E design-space ablation (§7.1)
//	20 <d> <p>                  GWT quantisation ablation (§5.1)
//	21 <p>                      Union-Find weighting ablation
//
// Flags:
//
//	-budget quick|standard|full   Monte Carlo effort preset (default standard)
//	-shots N -shotsperk N         explicit budget overrides
//	-seed N                       PRNG seed (default 2023)
//	-workers N                    worker goroutines (default GOMAXPROCS)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"astrea/internal/artifact"
	"astrea/internal/experiments"
	"astrea/internal/surface"
)

type renderer interface {
	Render(w io.Writer) error
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "astrea:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "compile" {
		return runCompile(args[1:])
	}
	fs := flag.NewFlagSet("astrea", flag.ContinueOnError)
	budgetName := fs.String("budget", "standard", "effort preset: quick, standard or full")
	shots := fs.Int64("shots", 0, "override direct Monte Carlo shots")
	shotsPerK := fs.Int64("shotsperk", 0, "override stratified shots per stratum")
	seed := fs.Uint64("seed", 2023, "PRNG seed")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) < 2 {
		return fmt.Errorf("usage: astrea [flags] <output-file> <experiment> [args...]")
	}
	outPath, exp := rest[0], rest[1]
	expArgs := rest[2:]

	b, err := budget(*budgetName)
	if err != nil {
		return err
	}
	if *shots > 0 {
		b.Shots = *shots
	}
	if *shotsPerK > 0 {
		b.ShotsPerK = *shotsPerK
	}
	b.Seed = *seed
	b.Workers = *workers

	results, err := dispatch(exp, expArgs, b)
	if err != nil {
		return err
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	out := io.MultiWriter(os.Stdout, f)
	for _, r := range results {
		if err := r.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

// runCompile implements `astrea compile`: build each requested operating
// point once and write it as a .astc bundle for the serve path to load.
func runCompile(args []string) error {
	fs := flag.NewFlagSet("astrea compile", flag.ContinueOnError)
	out := fs.String("out", ".", "output directory for .astc bundles")
	distances := fs.String("distances", "3,5,7", "comma-separated code distances")
	rounds := fs.Int("rounds", 0, "syndrome-extraction rounds (0 = one per distance, as the paper runs)")
	p := fs.Float64("p", 1e-3, "physical error rate the weight tables are programmed for")
	basisName := fs.String("basis", "Z", "memory-experiment basis: Z or X")
	gen := fs.Uint64("gen", 0, "generation ordinal stamped into the bundles (rotation ordering)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var basis surface.Basis
	switch strings.ToUpper(*basisName) {
	case "Z":
		basis = surface.BasisZ
	case "X":
		basis = surface.BasisX
	default:
		return fmt.Errorf("compile: unknown basis %q (want Z or X)", *basisName)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, part := range strings.Split(*distances, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, err := strconv.Atoi(part)
		if err != nil {
			return fmt.Errorf("compile: bad distance %q: %w", part, err)
		}
		r := *rounds
		if r <= 0 {
			r = d
		}
		start := time.Now()
		a, err := artifact.Compile(d, r, *p, basis)
		if err != nil {
			return fmt.Errorf("compile: d=%d: %w", d, err)
		}
		a.Meta.Generation = *gen
		built := time.Since(start)
		path := filepath.Join(*out, artifact.FileName(a.Meta))
		start = time.Now()
		enc := a.Encode()
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			return err
		}
		fmt.Printf("compiled %s: %d bytes, fingerprint %s (build %v, encode+write %v)\n",
			path, len(enc), a.Fingerprint, built.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func budget(name string) (experiments.Budget, error) {
	switch name {
	case "quick":
		return experiments.Quick, nil
	case "standard":
		return experiments.Standard, nil
	case "full":
		return experiments.Full, nil
	}
	return experiments.Budget{}, fmt.Errorf("unknown budget %q", name)
}

func dispatch(exp string, args []string, b experiments.Budget) ([]renderer, error) {
	argInt := func(i int, def int) (int, error) {
		if i >= len(args) {
			if def >= 0 {
				return def, nil
			}
			return 0, fmt.Errorf("experiment %s: missing argument %d", exp, i+1)
		}
		return strconv.Atoi(args[i])
	}
	argFloat := func(i int, def float64) (float64, error) {
		if i >= len(args) {
			if def >= 0 {
				return def, nil
			}
			return 0, fmt.Errorf("experiment %s: missing argument %d", exp, i+1)
		}
		return strconv.ParseFloat(args[i], 64)
	}

	switch exp {
	case "0":
		t1, err := experiments.Table1(3, 5, 7, 9)
		if err != nil {
			return nil, err
		}
		return []renderer{t1, experiments.Table6(), experiments.Table3And8(), experiments.LilliputWall()}, nil

	case "1":
		d, err := argInt(0, 7)
		if err != nil {
			return nil, err
		}
		res, err := experiments.LERSweep(b, d)
		if err != nil {
			return nil, err
		}
		return []renderer{res}, nil

	case "2":
		var ds []int
		for i := range args {
			d, err := argInt(i, -1)
			if err != nil {
				return nil, err
			}
			ds = append(ds, d)
		}
		res, err := experiments.Table4(b, ds...)
		if err != nil {
			return nil, err
		}
		return []renderer{res}, nil

	case "3":
		d, err := argInt(0, 7)
		if err != nil {
			return nil, err
		}
		p, err := argFloat(1, 1e-3)
		if err != nil {
			return nil, err
		}
		res, err := experiments.SoftwareMWPMLatency(d, p, b)
		if err != nil {
			return nil, err
		}
		return []renderer{res}, nil

	case "4":
		res, err := experiments.LERVsDistance(b)
		if err != nil {
			return nil, err
		}
		return []renderer{res}, nil

	case "5":
		res, err := experiments.Table5(b)
		if err != nil {
			return nil, err
		}
		return []renderer{res}, nil

	case "6":
		d, err := argInt(0, 7)
		if err != nil {
			return nil, err
		}
		p, err := argFloat(1, 1e-4)
		if err != nil {
			return nil, err
		}
		fig, err := experiments.Fig6(d, p, b)
		if err != nil {
			return nil, err
		}
		tab, err := experiments.Table2(b, d)
		if err != nil {
			return nil, err
		}
		return []renderer{fig, tab}, nil

	case "9":
		res, err := experiments.AstreaLatency(b)
		if err != nil {
			return nil, err
		}
		return []renderer{res}, nil

	case "10":
		d, err := argInt(0, 7)
		if err != nil {
			return nil, err
		}
		p, err := argFloat(1, 1e-3)
		if err != nil {
			return nil, err
		}
		a, err := experiments.WeightHistogram(d, p)
		if err != nil {
			return nil, err
		}
		bRes, err := experiments.FilterReduction(b, d, p, 16)
		if err != nil {
			return nil, err
		}
		return []renderer{a, bRes}, nil

	case "12":
		d, err := argInt(0, 9)
		if err != nil {
			return nil, err
		}
		t0, err := argInt(1, 500)
		if err != nil {
			return nil, err
		}
		t1, err := argInt(2, 1000)
		if err != nil {
			return nil, err
		}
		step, err := argInt(3, 100)
		if err != nil {
			return nil, err
		}
		// Artifact semantics: decode-time budget from t0..t1 ns; transmission
		// time = 1000 - t.
		var transmissions []float64
		for t := t1; t >= t0; t -= step {
			transmissions = append(transmissions, float64(1000-t))
		}
		res, err := experiments.Bandwidth(b, d, 1e-3, transmissions)
		if err != nil {
			return nil, err
		}
		return []renderer{res}, nil

	case "13":
		res, err := experiments.WthSweep(b, 7, 1e-3)
		if err != nil {
			return nil, err
		}
		return []renderer{res}, nil

	case "14":
		p, err := argFloat(0, 1e-4)
		if err != nil {
			return nil, err
		}
		res, err := experiments.Table9At(b, p)
		if err != nil {
			return nil, err
		}
		return []renderer{res}, nil

	case "15": // streaming real-time study (Fig 3 extension)
		d, err := argInt(0, 7)
		if err != nil {
			return nil, err
		}
		p, err := argFloat(1, 1e-3)
		if err != nil {
			return nil, err
		}
		res, err := experiments.StreamingStudy(b, d, p)
		if err != nil {
			return nil, err
		}
		return []renderer{res}, nil

	case "16": // syndrome compression (§7.6 extension)
		d, err := argInt(0, 9)
		if err != nil {
			return nil, err
		}
		p, err := argFloat(1, 1e-3)
		if err != nil {
			return nil, err
		}
		res, err := experiments.CompressionStudy(b, d, p)
		if err != nil {
			return nil, err
		}
		return []renderer{res}, nil

	case "17": // non-uniform noise / GWT reprogramming (§8.2)
		d, err := argInt(0, 5)
		if err != nil {
			return nil, err
		}
		res, err := experiments.NonUniformStudy(b, d, 1e-3, 10)
		if err != nil {
			return nil, err
		}
		drift, err := experiments.DriftStudy(b, d, 1e-3, 5)
		if err != nil {
			return nil, err
		}
		return []renderer{res, drift}, nil

	case "18": // memory-X vs memory-Z equivalence (§3.4)
		d, err := argInt(0, 5)
		if err != nil {
			return nil, err
		}
		p, err := argFloat(1, 2e-3)
		if err != nil {
			return nil, err
		}
		res, err := experiments.XZEquivalence(b, d, p)
		if err != nil {
			return nil, err
		}
		return []renderer{res}, nil

	case "19": // Astrea-G F/E design-space ablation (§7.1)
		d, err := argInt(0, 7)
		if err != nil {
			return nil, err
		}
		p, err := argFloat(1, 5e-3)
		if err != nil {
			return nil, err
		}
		res, err := experiments.FEAblation(b, d, p, nil, nil)
		if err != nil {
			return nil, err
		}
		return []renderer{res}, nil

	case "21": // Union-Find weighting ablation
		p, err := argFloat(0, 1e-4)
		if err != nil {
			return nil, err
		}
		res, err := experiments.UFAblation(b, p)
		if err != nil {
			return nil, err
		}
		return []renderer{res}, nil

	case "20": // GWT quantisation ablation (§5.1)
		d, err := argInt(0, 5)
		if err != nil {
			return nil, err
		}
		p, err := argFloat(1, 1e-3)
		if err != nil {
			return nil, err
		}
		res, err := experiments.QuantizationStudy(b, d, p)
		if err != nil {
			return nil, err
		}
		return []renderer{res}, nil
	}
	return nil, fmt.Errorf("unknown experiment %q (see -h)", exp)
}

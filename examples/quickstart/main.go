// Quickstart: build a distance-5 surface-code decoding stack, sample noisy
// memory-experiment shots, and decode them with Astrea — comparing its
// prediction, matching and hardware latency against the software MWPM
// gold standard on the same syndrome.
package main

import (
	"fmt"
	"log"

	"astrea"
)

func main() {
	const distance = 5
	const p = 1e-3

	sys, err := astrea.New(distance, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Built d=%d surface code at p=%g: %d Z-type detectors over %d rounds\n\n",
		sys.Distance(), sys.PhysicalErrorRate(), sys.NumDetectors(), distance)

	fast := sys.Astrea() // the paper's real-time exhaustive decoder
	gold := sys.MWPM()   // software blossom baseline

	src := sys.NewShotSource(2023)
	shown := 0
	for shot := 0; shown < 5 && shot < 100000; shot++ {
		syndrome, obs := src.Next()
		if syndrome.PopCount() < 2 {
			continue // show only non-trivial decodes
		}
		shown++
		r := fast.Decode(syndrome)
		g := gold.Decode(syndrome)
		fmt.Printf("shot %d: Hamming weight %d\n", shot, syndrome.PopCount())
		fmt.Printf("  Astrea matching (quantised weight %.0f, %d cycles = %.0f ns):\n",
			r.Weight, r.Cycles, astrea.LatencyNs(r))
		for _, pair := range r.Pairs {
			if pair[1] == astrea.Boundary {
				fmt.Printf("    detector %d -> boundary\n", pair[0])
			} else {
				fmt.Printf("    detector %d <-> detector %d\n", pair[0], pair[1])
			}
		}
		agree := "agrees with"
		if r.ObsPrediction != g.ObsPrediction {
			agree = "DISAGREES with"
		}
		correct := "correct"
		if r.ObsPrediction != obs {
			correct = "a logical error"
		}
		fmt.Printf("  prediction %s software MWPM and is %s\n\n", agree, correct)
	}

	// A quick accuracy check over many shots.
	stats, err := sys.EstimateLER(200000, 7, astrea.AstreaDecoder, astrea.MWPMDecoder)
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range stats {
		lo, hi := st.LERInterval()
		fmt.Printf("%-8s LER = %.3g  (95%% CI %.2g–%.2g)  mean latency %.2f ns, max %.0f ns\n",
			st.Name, st.LER(), lo, hi, st.MeanLatencyNs(), st.MaxLatencyNs())
	}
}

// Memory experiment: the paper's headline workload. Runs a state-
// preservation (memory-Z) experiment at one operating point and compares
// the logical error rate of every decoder in the repository — software
// MWPM, Astrea, Astrea-G, Clique+MWPM and the AFS-style Union-Find — the
// Table 4 study at example scale.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"astrea"
	"astrea/internal/report"
)

func main() {
	distance := flag.Int("d", 5, "code distance (odd, >= 3)")
	p := flag.Float64("p", 2e-3, "physical error rate")
	shots := flag.Int64("shots", 500000, "Monte Carlo shots")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	flag.Parse()

	sys, err := astrea.New(*distance, *p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memory-Z experiment: d=%d, %d rounds, p=%g, %d shots\n\n",
		*distance, *distance, *p, *shots)

	stats, err := sys.EstimateLER(*shots, *seed,
		astrea.MWPMDecoder, astrea.AstreaDecoder, astrea.AstreaGDecoder,
		astrea.CliqueDecoder, astrea.AFSDecoder)
	if err != nil {
		log.Fatal(err)
	}

	t := report.Table{
		Title: "logical error rate by decoder",
		Headers: []string{"decoder", "LER", "95% CI", "vs MWPM",
			"mean lat (ns)", "max lat (ns)", "skipped", "not real-time"},
	}
	base := stats[0].LER()
	for _, st := range stats {
		lo, hi := st.LERInterval()
		rel := "1.00x"
		if base > 0 {
			rel = fmt.Sprintf("%.2fx", st.LER()/base)
		}
		t.AddRow(st.Name, st.LER(), fmt.Sprintf("[%s, %s]", report.Sci(lo), report.Sci(hi)), rel,
			fmt.Sprintf("%.2f", st.MeanLatencyNs()), fmt.Sprintf("%.0f", st.MaxLatencyNs()),
			st.Skipped, st.NotRealTime)
	}
	if err := t.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// Bandwidth provisioning: the Table 7 study. Syndrome bits must be
// transmitted to the decoder inside the same 1 µs window used for decoding,
// so transmission time eats decode budget. This example sweeps the
// transmission time, shrinks Astrea-G's cycle budget accordingly, and
// reports the relative logical error rate — showing how little bandwidth a
// d=9 code actually needs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"astrea"
	"astrea/internal/experiments"
	"astrea/internal/hwmodel"
	"astrea/internal/report"
)

func main() {
	d := flag.Int("d", 9, "code distance")
	p := flag.Float64("p", 1e-3, "physical error rate")
	shotsPerK := flag.Int64("shotsperk", 2000, "stratified shots per fault count")
	flag.Parse()

	sys, err := astrea.New(*d, *p)
	if err != nil {
		log.Fatal(err)
	}
	wth := experiments.DefaultWth(*d, *p)
	points := hwmodel.BandwidthTable(*d, []float64{0, 100, 200, 300, 400, 500})

	t := report.Table{
		Title: fmt.Sprintf("syndrome bandwidth vs accuracy (d=%d, p=%g, W_th=%.1f)", *d, *p, wth),
		Headers: []string{"transmission (ns)", "bandwidth (MBps)", "decode budget (ns)",
			"Astrea-G LER", "relative"},
	}
	var base float64
	for _, pt := range points {
		cfg := hwmodel.DefaultAstreaG(wth)
		cfg.BudgetCycles = int(pt.DecodeBudgetNs / hwmodel.CycleNs)
		lers, err := sys.EstimateLERStratified(24, *shotsPerK, 11,
			func(s *astrea.System) (astrea.Decoder, error) { return s.AstreaGWith(cfg) })
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = lers[0]
		}
		bw := "unlimited"
		if pt.TransmissionNs > 0 {
			bw = fmt.Sprintf("%.0f", pt.BandwidthMBps)
		}
		rel := "1.00x"
		if base > 0 {
			rel = fmt.Sprintf("%.2fx", lers[0]/base)
		}
		t.AddRow(fmt.Sprintf("%.0f", pt.TransmissionNs), bw,
			fmt.Sprintf("%.0f", pt.DecodeBudgetNs), lers[0], rel)
	}
	if err := t.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// Latency sweep: characterises the hardware timing models of Astrea and
// Astrea-G across distances — the Figure 9 study plus Astrea-G's pipeline
// occupancy, rendered from the same cycle-accurate model the paper's FPGA
// implements (250 MHz; fetch HW+1 cycles; decode 1/11/103 cycles; pipeline
// iterations for high Hamming weights).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"astrea"
	"astrea/internal/report"
)

func main() {
	p := flag.Float64("p", 1e-3, "physical error rate")
	shots := flag.Int64("shots", 300000, "shots per distance")
	flag.Parse()

	t := report.Table{
		Title: fmt.Sprintf("decode latency at p=%g (250 MHz cycle model)", *p),
		Headers: []string{"d", "decoder", "mean (ns)", "mean HW>2 (ns)", "max (ns)",
			"skipped", "budget misses"},
	}
	for _, d := range []int{3, 5, 7} {
		sys, err := astrea.New(d, *p)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := sys.EstimateLER(*shots, 5, astrea.AstreaDecoder, astrea.AstreaGDecoder)
		if err != nil {
			log.Fatal(err)
		}
		for _, st := range stats {
			t.AddRow(d, st.Name,
				fmt.Sprintf("%.2f", st.MeanLatencyNs()),
				fmt.Sprintf("%.1f", st.MeanLatencyNonTrivialNs()),
				fmt.Sprintf("%.0f", st.MaxLatencyNs()),
				st.Skipped, st.NotRealTime)
		}
	}
	if err := t.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAstrea's worst case is 114 cycles = 456 ns (HW 10); beyond HW 10 it skips")
	fmt.Println("(counted under 'skipped') and Astrea-G's pipeline takes over within the 1 us budget.")
}

// Non-uniform devices: real hardware has hot spots and drifting error
// rates. This example builds a distance-5 device where some data qubits are
// 10x noisier, then decodes it two ways — with a Global Weight Table still
// programmed for the naive uniform assumption, and with the GWT
// reprogrammed from the true rates — demonstrating the paper's §8.2 claim
// that Astrea's GWT natively absorbs non-uniform error rates.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"astrea/internal/decoder"
	"astrea/internal/montecarlo"
	"astrea/internal/mwpm"
	"astrea/internal/report"
	"astrea/internal/surface"
)

func main() {
	d := flag.Int("d", 5, "code distance")
	baseP := flag.Float64("p", 1e-3, "base physical error rate")
	hot := flag.Float64("hot", 10, "hot-qubit multiplier")
	shots := flag.Int64("shots", 400000, "Monte Carlo shots")
	flag.Parse()

	code, err := surface.New(*d)
	if err != nil {
		log.Fatal(err)
	}
	scale := make([]float64, code.NumQubits())
	for i := range scale {
		scale[i] = 1
	}
	nHot := 0
	for q := 0; q < len(code.DataPos); q += 3 {
		scale[q] = *hot
		nHot++
	}
	fmt.Printf("d=%d device: %d of %d data qubits run at %gx the base rate p=%g\n\n",
		*d, nHot, len(code.DataPos), *hot, *baseP)

	// The true device: circuit carries the real per-qubit rates.
	cc, err := code.Memory(surface.BasisZ, *d, surface.NoiseMap{Base: *baseP, Scale: scale})
	if err != nil {
		log.Fatal(err)
	}
	trueEnv, err := montecarlo.NewEnvFromCircuit(code, cc, *d, *baseP)
	if err != nil {
		log.Fatal(err)
	}
	// The stale calibration: weights extracted from a uniform-p model.
	staleEnv, err := montecarlo.NewEnv(*d, *d, *baseP)
	if err != nil {
		log.Fatal(err)
	}

	res, err := montecarlo.Run(trueEnv, montecarlo.RunConfig{Shots: *shots, Seed: 7},
		func(*montecarlo.Env) (decoder.Decoder, error) { return mwpm.New(staleEnv.GWT), nil },
		func(env *montecarlo.Env) (decoder.Decoder, error) { return mwpm.New(env.GWT), nil },
	)
	if err != nil {
		log.Fatal(err)
	}

	t := report.Table{
		Title:   "decoding a non-uniform device",
		Headers: []string{"weight table", "logical error rate", "95% CI"},
	}
	names := []string{"stale (assumes uniform p)", "reprogrammed from true rates"}
	for i, st := range res.Stats {
		lo, hi := st.LERInterval()
		t.AddRow(names[i], st.LER(), fmt.Sprintf("[%s, %s]", report.Sci(lo), report.Sci(hi)))
	}
	if err := t.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if res.Stats[1].LER() > 0 {
		fmt.Printf("\nreprogramming the GWT improves the logical error rate by %.2fx\n",
			res.Stats[0].LER()/res.Stats[1].LER())
	}
}

// Benchmarks regenerating every table and figure of the paper's evaluation
// at a reduced Monte Carlo budget (one bench per table/figure; run the
// cmd/astrea CLI with -budget standard|full for publication-scale numbers).
// Custom metrics attach the scientifically meaningful outputs (logical
// error rates, latencies, probabilities) to the benchmark results, so
// `go test -bench=.` doubles as a smoke reproduction of the whole paper.
package astrea

import (
	"io"
	"testing"

	"astrea/internal/experiments"
)

// benchBudget keeps each iteration in the hundreds of milliseconds.
var benchBudget = experiments.Budget{Shots: 30_000, ShotsPerK: 300, Seed: 1}

func BenchmarkTable1_ResourceCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(3, 5, 7, 9)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_HWProbabilities(b *testing.B) {
	var last *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchBudget, 3, 5)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Results[0].Bands(experiments.Table2Bands)[0].Prob, "P(HW=0|d=3)")
	b.ReportMetric(last.Results[0].LER, "LER(d=3,p=1e-4)")
}

func BenchmarkFig3_SoftwareMWPMLatency(b *testing.B) {
	var last *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.SoftwareMWPMLatency(5, 1e-3, benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.P99.Nanoseconds()), "p99-ns")
}

func BenchmarkFig4_LERVsDistance(b *testing.B) {
	var last *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.LERVsDistance(benchBudget, 3, 5)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.LERs[0][1]/last.LERs[0][0], "AFS/MWPM(d=3)")
}

func BenchmarkFig6_HWModelVsObserved(b *testing.B) {
	var last *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(3, 1e-3, benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Analytic[2], "model-P(H=2)")
	b.ReportMetric(last.Observed[2], "observed-P(H=2)")
}

func BenchmarkTable4_DecoderLERs(b *testing.B) {
	var last *experiments.Table4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(benchBudget, 3)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.LERs[0][0], "MWPM-LER(d=3)")
	b.ReportMetric(last.LERs[0][4], "AFS-LER(d=3)")
}

func BenchmarkFig9_AstreaLatency(b *testing.B) {
	var last *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.AstreaLatency(benchBudget, 3, 5, 7)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MaxNs[2], "max-ns(d=7)")
	b.ReportMetric(last.MeanNs[2], "mean-ns(d=7)")
}

func BenchmarkTable5_HWTails(b *testing.B) {
	var last *experiments.Table5Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table5(benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Results[0].Bands(experiments.Table5Bands)[2].Prob, "P(HW>10|p=1e-3)")
}

func BenchmarkFig10a_WeightHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.WeightHistogram(7, 1e-3)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10b_FilterReduction(b *testing.B) {
	var last *experiments.Fig10bResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.FilterReduction(
			experiments.Budget{Shots: 400_000, ShotsPerK: 100, Seed: 3}, 7, 3e-3, 16)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Reduction, "pair-reduction")
}

func BenchmarkFig12_LERSweepD7(b *testing.B) {
	var last *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.LERSweep(benchBudget, 7, 5e-4, 1e-3)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last.MWPM[1] > 0 {
		b.ReportMetric(last.AstreaG[1]/last.MWPM[1], "AstreaG/MWPM(p=1e-3)")
	}
}

func BenchmarkFig13_WthSweep(b *testing.B) {
	var last *experiments.WthSweepResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.WthSweep(benchBudget, 7, 1e-3, 4, 7)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Relative[0], "relLER(Wth=4)")
	b.ReportMetric(last.Relative[1], "relLER(Wth=7)")
}

func BenchmarkFig14_LERSweepD9(b *testing.B) {
	var last *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.LERSweep(benchBudget, 9, 1e-3)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last.MWPM[0] > 0 {
		b.ReportMetric(last.AstreaG[0]/last.MWPM[0], "AstreaG/MWPM(d=9,p=1e-3)")
	}
}

func BenchmarkTable6_SRAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table6(7, 9)
		if res.Rows["Total"][0] == 0 {
			b.Fatal("empty model")
		}
	}
}

func BenchmarkTable7_Bandwidth(b *testing.B) {
	var last *experiments.BandwidthResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Bandwidth(benchBudget, 9, 1e-3, []float64{0, 500})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.RelLER[1], "relLER(500ns-tx)")
}

func BenchmarkTable9_StratifiedLERs(b *testing.B) {
	var last *experiments.Table9Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table9(benchBudget, 7)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MWPM[0], "MWPM-LER(d=7,p=1e-4)")
}

// BenchmarkDecodeThroughput measures raw decode throughput of the two
// real-time decoders on realistic syndromes — the end-to-end software
// latency companion to the hardware cycle model.
func BenchmarkDecodeThroughput(b *testing.B) {
	sys, err := New(7, 1e-3)
	if err != nil {
		b.Fatal(err)
	}
	for _, mk := range []struct {
		name string
		mk   func() (Decoder, error)
	}{
		{"Astrea", func() (Decoder, error) { return sys.Astrea(), nil }},
		{"AstreaG", sys.AstreaG},
		{"MWPM", func() (Decoder, error) { return sys.MWPM(), nil }},
	} {
		b.Run(mk.name, func(b *testing.B) {
			dec, err := mk.mk()
			if err != nil {
				b.Fatal(err)
			}
			src := sys.NewShotSource(1)
			pool := make([]Syndrome, 0, 256)
			for len(pool) < 256 {
				s, _ := src.Next()
				if s.PopCount() > 0 {
					pool = append(pool, s.Clone())
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec.Decode(pool[i%len(pool)])
			}
		})
	}
}

// Benchmarks regenerating every table and figure of the paper's evaluation
// at a reduced Monte Carlo budget (one bench per table/figure; run the
// cmd/astrea CLI with -budget standard|full for publication-scale numbers).
// Custom metrics attach the scientifically meaningful outputs (logical
// error rates, latencies, probabilities) to the benchmark results, so
// `go test -bench=.` doubles as a smoke reproduction of the whole paper.
package astrea

import (
	"io"
	"sort"
	"testing"

	"astrea/internal/bitvec"
	"astrea/internal/experiments"
)

// benchBudget keeps each iteration in the hundreds of milliseconds.
var benchBudget = experiments.Budget{Shots: 30_000, ShotsPerK: 300, Seed: 1}

func BenchmarkTable1_ResourceCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(3, 5, 7, 9)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_HWProbabilities(b *testing.B) {
	var last *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchBudget, 3, 5)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Results[0].Bands(experiments.Table2Bands)[0].Prob, "P(HW=0|d=3)")
	b.ReportMetric(last.Results[0].LER, "LER(d=3,p=1e-4)")
}

func BenchmarkFig3_SoftwareMWPMLatency(b *testing.B) {
	var last *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.SoftwareMWPMLatency(5, 1e-3, benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.P99.Nanoseconds()), "p99-ns")
}

func BenchmarkFig4_LERVsDistance(b *testing.B) {
	var last *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.LERVsDistance(benchBudget, 3, 5)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.LERs[0][1]/last.LERs[0][0], "AFS/MWPM(d=3)")
}

func BenchmarkFig6_HWModelVsObserved(b *testing.B) {
	var last *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(3, 1e-3, benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Analytic[2], "model-P(H=2)")
	b.ReportMetric(last.Observed[2], "observed-P(H=2)")
}

func BenchmarkTable4_DecoderLERs(b *testing.B) {
	var last *experiments.Table4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(benchBudget, 3)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.LERs[0][0], "MWPM-LER(d=3)")
	b.ReportMetric(last.LERs[0][4], "AFS-LER(d=3)")
}

func BenchmarkFig9_AstreaLatency(b *testing.B) {
	var last *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.AstreaLatency(benchBudget, 3, 5, 7)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MaxNs[2], "max-ns(d=7)")
	b.ReportMetric(last.MeanNs[2], "mean-ns(d=7)")
}

func BenchmarkTable5_HWTails(b *testing.B) {
	var last *experiments.Table5Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table5(benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Results[0].Bands(experiments.Table5Bands)[2].Prob, "P(HW>10|p=1e-3)")
}

func BenchmarkFig10a_WeightHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.WeightHistogram(7, 1e-3)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10b_FilterReduction(b *testing.B) {
	var last *experiments.Fig10bResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.FilterReduction(
			experiments.Budget{Shots: 400_000, ShotsPerK: 100, Seed: 3}, 7, 3e-3, 16)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Reduction, "pair-reduction")
}

func BenchmarkFig12_LERSweepD7(b *testing.B) {
	var last *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.LERSweep(benchBudget, 7, 5e-4, 1e-3)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last.MWPM[1] > 0 {
		b.ReportMetric(last.AstreaG[1]/last.MWPM[1], "AstreaG/MWPM(p=1e-3)")
	}
}

func BenchmarkFig13_WthSweep(b *testing.B) {
	var last *experiments.WthSweepResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.WthSweep(benchBudget, 7, 1e-3, 4, 7)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Relative[0], "relLER(Wth=4)")
	b.ReportMetric(last.Relative[1], "relLER(Wth=7)")
}

func BenchmarkFig14_LERSweepD9(b *testing.B) {
	var last *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.LERSweep(benchBudget, 9, 1e-3)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last.MWPM[0] > 0 {
		b.ReportMetric(last.AstreaG[0]/last.MWPM[0], "AstreaG/MWPM(d=9,p=1e-3)")
	}
}

func BenchmarkTable6_SRAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table6(7, 9)
		if res.Rows["Total"][0] == 0 {
			b.Fatal("empty model")
		}
	}
}

func BenchmarkTable7_Bandwidth(b *testing.B) {
	var last *experiments.BandwidthResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Bandwidth(benchBudget, 9, 1e-3, []float64{0, 500})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.RelLER[1], "relLER(500ns-tx)")
}

func BenchmarkTable9_StratifiedLERs(b *testing.B) {
	var last *experiments.Table9Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table9(benchBudget, 7)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MWPM[0], "MWPM-LER(d=7,p=1e-4)")
}

// BenchmarkDecodeThroughput measures raw decode throughput of the two
// real-time decoders on realistic syndromes — the end-to-end software
// latency companion to the hardware cycle model.
func BenchmarkDecodeThroughput(b *testing.B) {
	sys, err := New(7, 1e-3)
	if err != nil {
		b.Fatal(err)
	}
	for _, mk := range []struct {
		name string
		mk   func() (Decoder, error)
	}{
		{"Astrea", func() (Decoder, error) { return sys.Astrea(), nil }},
		{"AstreaG", sys.AstreaG},
		{"MWPM", func() (Decoder, error) { return sys.MWPM(), nil }},
	} {
		b.Run(mk.name, func(b *testing.B) {
			dec, err := mk.mk()
			if err != nil {
				b.Fatal(err)
			}
			src := sys.NewShotSource(1)
			pool := make([]Syndrome, 0, 256)
			for len(pool) < 256 {
				s, _ := src.Next()
				if s.PopCount() > 0 {
					pool = append(pool, s.Clone())
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec.Decode(pool[i%len(pool)])
			}
		})
	}
}

// streamBenchRows samples whole shots and splits each syndrome into
// per-round rows, concatenating the shots into one long closed round
// stream for the streaming benchmarks.
func streamBenchRows(sys *System, seed uint64, shots int) []Syndrome {
	width := sys.StreamRowWidth()
	src := sys.NewShotSource(seed)
	rows := make([]Syndrome, 0, shots)
	for s := 0; s < shots; s++ {
		synd, _ := src.Next()
		detRows := synd.Len() / width
		for r := 0; r < detRows; r++ {
			row := bitvec.New(width)
			for k := 0; k < width; k++ {
				if synd.Get(r*width + k) {
					row.Set(k)
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

func quantileNs(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// BenchmarkStreaming_Windowed pushes a closed multi-shot round stream
// through the windowed decode pipeline (plan → decode → fuse) and reports
// windows/sec plus the commit-sojourn quantiles — the streaming subsystem's
// throughput companion to BenchmarkDecodeThroughput.
func BenchmarkStreaming_Windowed(b *testing.B) {
	sys, err := New(5, 1e-3)
	if err != nil {
		b.Fatal(err)
	}
	rows := streamBenchRows(sys, 1, 100)
	var windows int
	var sojourns []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		commits, stats, err := sys.DecodeClosedStream(StreamConfig{Decoder: "astrea"}, rows)
		if err != nil {
			b.Fatal(err)
		}
		windows += int(stats.Windows)
		sojourns = sojourns[:0]
		for _, c := range commits {
			sojourns = append(sojourns, c.SojournNs)
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(windows)/sec, "windows/s")
		b.ReportMetric(float64(b.N*len(rows))/sec, "rounds/s")
	}
	sort.Float64s(sojourns)
	b.ReportMetric(quantileNs(sojourns, 0.50), "commit-p50-ns")
	b.ReportMetric(quantileNs(sojourns, 0.95), "commit-p95-ns")
	b.ReportMetric(quantileNs(sojourns, 0.99), "commit-p99-ns")
}

// BenchmarkStreaming_WholeShotBaseline decodes the same sampled shots
// whole (one decode per d-round syndrome) — the baseline the streaming
// pipeline's closed-stream equivalence is measured against.
func BenchmarkStreaming_WholeShotBaseline(b *testing.B) {
	sys, err := New(5, 1e-3)
	if err != nil {
		b.Fatal(err)
	}
	dec := sys.Astrea()
	src := sys.NewShotSource(1)
	shots := make([]Syndrome, 0, 100)
	for len(shots) < cap(shots) {
		s, _ := src.Next()
		shots = append(shots, s.Clone())
	}
	roundsPerShot := sys.NumDetectors() / sys.StreamRowWidth()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range shots {
			dec.Decode(s)
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N*len(shots))/sec, "shots/s")
		b.ReportMetric(float64(b.N*len(shots)*roundsPerShot)/sec, "rounds/s")
	}
}
